"""The schedule executor: lowering IR steps onto any p2p stack.

One engine replaces the per-(kind, stack) generator zoo: it walks the
calling rank's step list and lowers each step onto the communicator's
primitives — the *same* primitives the seed algorithms used, in the same
order, with the same scratch-buffer discipline and arithmetic charge
sites:

* :class:`~repro.sched.ir.Send`/:class:`~repro.sched.ir.Recv` lower to
  ``comm.send``/``comm.recv`` (RCCE rendezvous on the blocking stack,
  ``isend``/``irecv`` + ``wait`` elsewhere);
* both-sided :class:`~repro.sched.ir.Exchange` lowers to
  :func:`~repro.core.exchange.full_exchange`, honouring the baked-in
  ``send_first`` on the blocking stack and issuing exactly one send and
  one receive request elsewhere (within LWNB's single-outstanding-request
  budget);
* one-sided exchanges (the prefix-scan edges) issue their single
  operation and complete it with ``wait_all``, mirroring
  ``repro.core.scan``'s posture on both stack families;
* reductions charge ``latency.reduce_doubles`` exactly where the seed
  did: unconditionally for tree folds, only for non-empty blocks in the
  ring reduce-scatter.

Executing a default schedule is therefore bit-identical in virtual time
to the seed path on every stack (``tests/sched/test_engine_golden.py``).
Spans annotate the run with the schedule label and the builder's round
tags; like all obs spans they are timing-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.core.exchange import full_exchange
from repro.core.ops import ReduceOp, SUM
from repro.obs.spans import span
from repro.sched.builders import build_schedule
from repro.sched.ir import (
    CopyBlock,
    Exchange,
    Interval,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator
    from repro.hw.machine import CoreEnv

#: Kinds whose builders consume the communicator's block partition.
_PARTITIONED = {
    ("allreduce", "rsag"), ("reduce", "rsg"),
    ("bcast", "scatter_allgather"), ("reduce_scatter", "ring"),
}


def _view(buffers: dict[str, np.ndarray], iv: Interval) -> np.ndarray:
    return buffers[iv.buf][iv.lo:iv.hi]


def _run_steps(comm: "Communicator", env: "CoreEnv", sched: Schedule,
               buffers: dict[str, np.ndarray], op: ReduceOp) -> Generator:
    """Execute this rank's plan (the engine inner loop)."""
    plan = sched.plans[env.rank]
    with span(env, "schedule", sched.label):
        i = 0
        while i < len(plan):
            rnd = plan[i].round
            if rnd is None:
                yield from _run_step(comm, env, plan[i], buffers, op)
                i += 1
            else:
                with span(env, "round", rnd):
                    while i < len(plan) and plan[i].round == rnd:
                        yield from _run_step(comm, env, plan[i], buffers,
                                             op)
                        i += 1


def _run_step(comm: "Communicator", env: "CoreEnv", step,
              buffers: dict[str, np.ndarray], op: ReduceOp) -> Generator:
    if isinstance(step, Exchange):
        yield from _run_exchange(comm, env, step, buffers, op)
    elif isinstance(step, Send):
        yield from comm.send(env, _view(buffers, step.data), step.peer)
    elif isinstance(step, Recv):
        yield from comm.recv(env, _view(buffers, step.data), step.peer)
    elif isinstance(step, ReduceRecv):
        target = _view(buffers, step.data)
        tmp = np.empty_like(target)
        yield from comm.recv(env, tmp, step.peer)
        # Tree folds charge unconditionally (binomial_reduce, _fold_in).
        yield from env.consume(env.latency.reduce_doubles(target.size),
                               "compute")
        target[:] = op(target, tmp)
    elif isinstance(step, CopyBlock):
        src = _view(buffers, step.src)
        if step.charged:
            yield from env.consume(
                env.latency.private_copy_bytes(src.nbytes), "copy")
        _view(buffers, step.dst)[:] = src
    elif isinstance(step, Rotate):
        buf = buffers[step.buf]
        rows = buf.reshape(step.rows, -1)
        yield from env.consume(
            env.latency.private_copy_bytes(buf.nbytes), "copy")
        out = np.empty_like(rows)
        for i in range(step.rows):
            out[(step.shift + i) % step.rows] = rows[i]
        rows[:] = out
    else:  # pragma: no cover - the IR is closed
        raise TypeError(f"unknown schedule step {step!r}")


def _run_exchange(comm: "Communicator", env: "CoreEnv", step: Exchange,
                  buffers: dict[str, np.ndarray],
                  op: ReduceOp) -> Generator:
    send_view = (_view(buffers, step.send)
                 if step.send is not None else None)
    recv_view = (_view(buffers, step.recv)
                 if step.recv is not None else None)
    if step.reduce:
        # Receive into scratch, fold after completion (ring RS posture).
        recv_buf = np.empty_like(recv_view)
    else:
        recv_buf = recv_view
    if step.send_peer is not None and step.recv_peer is not None:
        yield from full_exchange(comm, env, send_view, step.send_peer,
                                 recv_buf, step.recv_peer,
                                 step.send_first)
    elif comm.blocking:
        # One-sided edge (scan): the baked order, blocking calls.
        if send_view is not None:
            yield from comm.p2p.send(env, send_view, step.send_peer)
        if recv_buf is not None:
            yield from comm.p2p.recv(env, recv_buf, step.recv_peer)
    else:
        reqs = []
        if send_view is not None:
            req = yield from comm.p2p.isend(env, send_view.copy(),
                                            step.send_peer)
            reqs.append(req)
        if recv_buf is not None:
            req = yield from comm.p2p.irecv(env, recv_buf, step.recv_peer)
            reqs.append(req)
        if reqs:
            yield from comm.p2p.wait_all(env, reqs)
    if step.reduce:
        nels = recv_view.size
        if nels:
            yield from env.consume(env.latency.reduce_doubles(nels),
                                   "compute")
            if step.reversed_fold:
                recv_view[:] = op(recv_buf, recv_view)
            else:
                recv_view[:] = op(recv_view, recv_buf)


def schedule_for(comm: "Communicator", kind: str, name: str, p: int,
                 n: int, root: int = 0) -> Schedule:
    """Resolve the schedule instance for one collective call.

    A synthesized chunked transform inherits its base builder's
    partition behavior (``synth/rsag+c4`` consumes the communicator's
    block partition exactly like ``rsag`` does); pipelines take none.
    """
    effective = name
    if name.startswith("synth/"):
        from repro.sched.synth import base_builder

        effective = base_builder(kind, name)
    part = (comm.partition(n, p)
            if (kind, effective) in _PARTITIONED else None)
    return build_schedule(kind, name, p, n, part=part, root=root)


def run_schedule(comm: "Communicator", env: "CoreEnv", kind: str,
                 name: str, sendbuf: np.ndarray, *, op: ReduceOp = SUM,
                 root: int = 0) -> Generator:
    """Execute schedule ``kind:name`` for this rank's collective call.

    Buffer conventions: ``"in"`` aliases the caller's (flattened)
    operand and is only read; ``"work"`` is a fresh result buffer.  The
    per-kind result extraction matches the native methods (bcast fills
    the caller's buffer in place; reduce_scatter returns
    ``(block, partition)``; allgather/alltoall return ``(p, n)``).
    """
    p, me = env.size, env.rank
    if kind == "alltoall":
        if sendbuf.shape[0] != p:
            raise ValueError(
                f"alltoall sendbuf must have {p} rows, "
                f"got {sendbuf.shape[0]}")
        n = sendbuf.size // p
    else:
        n = sendbuf.size
    sched = schedule_for(comm, kind, name, p, n, root)
    flat_in = sendbuf.reshape(-1)
    work = np.empty(sched.buffers["work"], dtype=sendbuf.dtype)
    buffers = {"in": flat_in, "work": work}
    yield from _run_steps(comm, env, sched, buffers, op)
    if kind in ("allreduce", "scan"):
        return work
    if kind == "reduce":
        return work if me == root else None
    if kind == "bcast":
        flat_in[:] = work
        return sendbuf
    if kind in ("allgather", "alltoall"):
        return work.reshape(p, n)
    if kind == "reduce_scatter":
        part = comm.partition(n, p)
        return work[part.slice_of(me)].copy(), part
    raise KeyError(f"unknown scheduled collective kind {kind!r}")


def parse_sched_algo(algo: Optional[str]) -> Optional[str]:
    """``"sched:<name>"`` -> ``<name>``; anything else -> None."""
    if algo is not None and algo.startswith("sched:"):
        return algo[len("sched:"):]
    return None
