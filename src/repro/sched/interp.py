"""Machine-free numpy interpretation of schedules.

The property suite (``tests/properties/test_prop_schedules.py``)
established the semantics: execute the IR on real numpy buffers with
eager sends and FIFO channels — the non-blocking posture whose
deadlock-freedom the static verifier proves — so a schedule's numeric
output can be checked at p = 48 in milliseconds instead of a full
simulation.  The synthesizer needs the same check *inside* the library
(``python -m repro synth`` refuses to report a candidate that does not
interpret correctly), so the interpreter lives here and the property
tests drive it over the synthesized repertoire.

:func:`check_schedule_numeric` bundles the per-kind references: it
interprets the schedule on integer-valued doubles (exact reductions)
and asserts the work buffers match numpy's answer.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.blocks import Partition, standard_partition
from repro.core.ops import SUM, ReduceOp
from repro.sched.ir import (
    CopyBlock,
    Exchange,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
)


class InterpreterStall(AssertionError):
    """No rank can make progress: an unmatched receive in the schedule."""


def interpret(sched: Schedule, inputs, op: ReduceOp = SUM) -> list:
    """Run a schedule on numpy buffers; returns per-rank work arrays."""
    state = [{"in": np.asarray(inputs[r], dtype=float).reshape(-1).copy(),
              "work": np.zeros(sched.buffers["work"])}
             for r in range(sched.p)]
    channels: dict = {}
    pcs = [0] * sched.p
    half_done = [False] * sched.p

    def view(rank, iv):
        return state[rank][iv.buf][iv.lo:iv.hi]

    def pop(src, dst):
        chan = channels.get((src, dst))
        return chan.popleft() if chan else None

    progress = True
    while progress:
        progress = False
        for r in range(sched.p):
            while pcs[r] < len(sched.plans[r]):
                step = sched.plans[r][pcs[r]]
                if isinstance(step, Send):
                    channels.setdefault((r, step.peer), deque()).append(
                        view(r, step.data).copy())
                elif isinstance(step, Recv):
                    payload = pop(step.peer, r)
                    if payload is None:
                        break
                    view(r, step.data)[:] = payload
                elif isinstance(step, ReduceRecv):
                    payload = pop(step.peer, r)
                    if payload is None:
                        break
                    target = view(r, step.data)
                    target[:] = op(target, payload)
                elif isinstance(step, Exchange):
                    if step.send_peer is not None and not half_done[r]:
                        channels.setdefault(
                            (r, step.send_peer), deque()).append(
                                view(r, step.send).copy())
                        half_done[r] = True
                    if step.recv_peer is not None:
                        payload = pop(step.recv_peer, r)
                        if payload is None:
                            break
                        target = view(r, step.recv)
                        if step.reduce and target.size:
                            if step.reversed_fold:
                                target[:] = op(payload, target)
                            else:
                                target[:] = op(target, payload)
                        elif not step.reduce:
                            target[:] = payload
                    half_done[r] = False
                elif isinstance(step, CopyBlock):
                    view(r, step.dst)[:] = view(r, step.src)
                elif isinstance(step, Rotate):
                    buf = state[r][step.buf].reshape(step.rows, -1)
                    out = np.empty_like(buf)
                    for i in range(step.rows):
                        out[(step.shift + i) % step.rows] = buf[i]
                    buf[:] = out
                pcs[r] += 1
                progress = True
    if not all(pcs[r] == len(sched.plans[r]) for r in range(sched.p)):
        stuck = [r for r in range(sched.p)
                 if pcs[r] < len(sched.plans[r])]
        raise InterpreterStall(
            f"{sched.label}: interpreter stalled on ranks {stuck} "
            f"(unmatched receive)")
    return [state[r]["work"] for r in range(sched.p)]


def int_inputs(p: int, n: int, seed: int = 20120901) -> list:
    """Integer-valued doubles: reductions stay exact under IEEE sums."""
    rng = np.random.default_rng(seed)
    return [rng.integers(-50, 50, size=n).astype(float) for _ in range(p)]


def check_schedule_numeric(sched: Schedule, *, seed: int = 20120901) -> None:
    """Interpret ``sched`` and assert the per-kind numpy reference.

    Covers every scheduled kind; raises :class:`AssertionError` (or
    :class:`InterpreterStall`) on any mismatch.  ``meta["root"]`` selects
    the root for rooted kinds, ``meta["part_sizes"]`` the partition for
    reduce_scatter (standard partition when absent, matching the
    builders' default).
    """
    p, n = sched.p, sched.n
    kind = sched.kind
    root = int(sched.meta.get("root", 0))
    if kind == "alltoall":
        rng = np.random.default_rng(seed)
        matrices = [rng.integers(-50, 50, size=(p, n)).astype(float)
                    for _ in range(p)]
        work = interpret(sched, matrices)
        for r in range(p):
            got = work[r].reshape(p, n)
            for s in range(p):
                assert np.array_equal(got[s], matrices[s][r]), \
                    f"{sched.label}: alltoall row {s} wrong on rank {r}"
        return
    inputs = int_inputs(p, n, seed)
    work = interpret(sched, inputs)
    if kind == "allreduce":
        expected = np.sum(inputs, axis=0)
        for r in range(p):
            assert np.array_equal(work[r], expected), \
                f"{sched.label}: allreduce wrong on rank {r}"
    elif kind == "reduce":
        assert np.array_equal(work[root], np.sum(inputs, axis=0)), \
            f"{sched.label}: reduce wrong at root {root}"
    elif kind == "bcast":
        for r in range(p):
            assert np.array_equal(work[r], inputs[root]), \
                f"{sched.label}: bcast wrong on rank {r}"
    elif kind == "allgather":
        expected = np.concatenate(inputs)
        for r in range(p):
            assert np.array_equal(work[r], expected), \
                f"{sched.label}: allgather wrong on rank {r}"
    elif kind == "reduce_scatter":
        sizes = sched.meta.get("part_sizes")
        part = (standard_partition(n, p) if sizes is None
                else Partition(n, tuple(sizes)))
        total = np.sum(inputs, axis=0)
        for r in range(p):
            block = part.slice_of(r)
            assert np.array_equal(work[r][block], total[block]), \
                f"{sched.label}: reduce_scatter block wrong on rank {r}"
    elif kind == "scan":
        for r in range(p):
            assert np.array_equal(work[r],
                                  np.sum(inputs[:r + 1], axis=0)), \
                f"{sched.label}: scan prefix wrong on rank {r}"
    else:
        raise KeyError(f"unknown scheduled collective kind {kind!r}")
