"""Pure schedule builders: the algorithm repertoire as data.

Each builder ports one seed algorithm — the inline bodies of
``repro.core.{allreduce,reduce,bcast,allgather,reduce_scatter,alltoall,
scan}`` and the :mod:`repro.core.alt_algorithms` repertoire — into a
:class:`~repro.sched.ir.Schedule`, preserving the exact round structure,
exchange intervals, arithmetic charge sites and deadlock-avoidance
orderings (odd-even for rings, rank comparison for pairwise exchanges).
The engine executing a builder's output is therefore bit-identical in
virtual time to the seed generator it was ported from (the golden test
``tests/sched/test_engine_golden.py`` asserts this for every kind x
stack at p in {2, 47, 48}).

Builders are pure functions of ``(p, n, partition, root)``; schedules
are cached per argument tuple (they are immutable and rank-complete, so
one instance serves a whole simulation).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterable, Optional

from repro.core.blocks import Partition
from repro.sched.ir import (
    CopyBlock,
    Exchange,
    Interval,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
    Step,
)


def _largest_pow2_below(p: int) -> int:
    pow2 = 1
    while pow2 * 2 <= p:
        pow2 *= 2
    return pow2


def _block_iv(buf: str, part: Partition, lo_block: int,
              hi_block: Optional[int] = None) -> Interval:
    """Interval covering blocks ``[lo_block, hi_block]`` (inclusive)."""
    hi_block = lo_block if hi_block is None else hi_block
    lo = part.offset(lo_block)
    hi = part.offset(hi_block) + part.size(hi_block)
    return Interval(buf, lo, hi)


def _ring_send_first(me: int) -> bool:
    """RCCE_comm's odd-even rule (``exchange.ring_send_first``)."""
    return me % 2 == 0


def _pair_send_first(me: int, partner: int) -> bool:
    """Rank-comparison rule (``exchange.pairwise_send_first``)."""
    return me < partner


def _init_copy(me: int, n: int, work_lo: int = 0) -> CopyBlock:
    """The free ``acc = sendbuf.copy()`` staging assignment."""
    return CopyBlock(Interval("in", 0, n),
                     Interval("work", work_lo, work_lo + n))


# --------------------------------------------------------------------- #
# Ring phases (reduce_scatter.py / allgather.py)
# --------------------------------------------------------------------- #
def _ring_reduce_scatter_steps(me: int, p: int, part: Partition,
                               shift: int = 0) -> list[Step]:
    """Port of ``ring_reduce_scatter``'s round loop over buffer ``work``."""
    steps: list[Step] = []
    right, left = (me + 1) % p, (me - 1) % p
    vme = (me - shift) % p
    send_first = _ring_send_first(me)
    for r in range(p - 1):
        send_block = (vme - 1 - r) % p
        recv_block = (vme - 2 - r) % p
        steps.append(Exchange(
            send_peer=right, send=_block_iv("work", part, send_block),
            recv_peer=left, recv=_block_iv("work", part, recv_block),
            send_first=send_first, reduce=True, round=r))
    return steps


def _ring_allgather_blocks_steps(me: int, p: int, part: Partition,
                                 shift: int = 0,
                                 round_base: int = 0) -> list[Step]:
    """Port of ``ring_allgather_blocks``'s round loop over ``work``."""
    steps: list[Step] = []
    right, left = (me + 1) % p, (me - 1) % p
    vme = (me - shift) % p
    send_first = _ring_send_first(me)
    for r in range(p - 1):
        send_block = (vme - r) % p
        recv_block = (vme - 1 - r) % p
        steps.append(Exchange(
            send_peer=right, send=_block_iv("work", part, send_block),
            recv_peer=left, recv=_block_iv("work", part, recv_block),
            send_first=send_first, round=round_base + r))
    return steps


# --------------------------------------------------------------------- #
# Binomial-tree phases (reduce.py / bcast.py)
# --------------------------------------------------------------------- #
def _binomial_reduce_steps(me: int, p: int, root: int,
                           data: Interval) -> list[Step]:
    """Port of ``binomial_reduce`` (whole-vector tree to ``root``)."""
    steps: list[Step] = []
    vrank = (me - root) % p
    mask = 1
    while mask < p:
        if vrank & mask:
            steps.append(Send((vrank - mask + root) % p, data))
            return steps
        src_v = vrank | mask
        if src_v < p:
            steps.append(ReduceRecv((src_v + root) % p, data))
        mask <<= 1
    return steps


def _binomial_bcast_steps(me: int, p: int, root: int,
                          data: Interval) -> list[Step]:
    """Port of ``binomial_bcast`` (whole-vector tree from ``root``)."""
    steps: list[Step] = []
    vrank = (me - root) % p
    mask = 1
    while mask < p:
        if vrank & mask:
            steps.append(Recv((vrank - mask + root) % p, data))
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < p:
            steps.append(Send((vrank + mask + root) % p, data))
        mask >>= 1
    return steps


def _binomial_scatter_steps(me: int, p: int, root: int,
                            part: Partition) -> list[Step]:
    """Port of ``binomial_scatter_ranges`` (contiguous vrank subtrees)."""
    steps: list[Step] = []
    vrank = (me - root) % p
    mask = 1
    extent = p
    while mask < p:
        if vrank & mask:
            src = (vrank - mask + root) % p
            extent = min(mask, p - vrank)
            steps.append(Recv(
                src, _block_iv("work", part, vrank, vrank + extent - 1)))
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if mask < extent:
            dst_v = vrank + mask
            dst_extent = extent - mask
            steps.append(Send(
                (dst_v + root) % p,
                _block_iv("work", part, dst_v, dst_v + dst_extent - 1)))
            extent = mask
        mask >>= 1
    return steps


def _binomial_gather_steps(me: int, p: int, root: int,
                           part: Partition) -> list[Step]:
    """Port of ``binomial_gather_blocks`` (subtree ranges to ``root``)."""
    steps: list[Step] = []
    vrank = (me - root) % p
    extent = 1
    mask = 1
    while mask < p:
        if vrank & mask == 0:
            src_v = vrank + mask
            if src_v < p:
                src_extent = min(mask, p - src_v)
                steps.append(Recv(
                    (src_v + root) % p,
                    _block_iv("work", part, src_v, src_v + src_extent - 1)))
                extent += src_extent
        else:
            steps.append(Send(
                (vrank - mask + root) % p,
                _block_iv("work", part, vrank, vrank + extent - 1)))
            return steps
        mask <<= 1
    return steps


# --------------------------------------------------------------------- #
# Allreduce builders
# --------------------------------------------------------------------- #
def build_rsag_allreduce(p: int, n: int, part: Partition,
                         root: int) -> Schedule:
    """Ring ReduceScatter + ring Allgather (``rsag_allreduce``)."""
    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            steps += _ring_reduce_scatter_steps(me, p, part)
            steps += _ring_allgather_blocks_steps(me, p, part)
        plans.append(tuple(steps))
    return Schedule("allreduce", "rsag", p, n, {"in": n, "work": n},
                    tuple(plans), {"part_sizes": part.sizes, "root": 0})


def build_reduce_bcast_allreduce(p: int, n: int, part: Partition,
                                 root: int) -> Schedule:
    """Binomial Reduce to 0 + binomial Broadcast (``reduce_bcast``)."""
    whole = Interval("work", 0, n)
    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            steps += _binomial_reduce_steps(me, p, 0, whole)
            steps += _binomial_bcast_steps(me, p, 0, whole)
        plans.append(tuple(steps))
    return Schedule("allreduce", "reduce_bcast", p, n,
                    {"in": n, "work": n}, tuple(plans), {"root": 0})


def _fold_in_steps(me: int, p: int, pow2: int,
                   whole: Interval) -> list[Step]:
    """Port of ``alt_algorithms._fold_in`` (excess ranks go passive)."""
    rest = p - pow2
    if me >= pow2:
        return [Send(me - pow2, whole)]
    if me < rest:
        return [ReduceRecv(me + pow2, whole)]
    return []


def _fold_out_steps(me: int, p: int, pow2: int,
                    whole: Interval) -> list[Step]:
    """Port of ``alt_algorithms._fold_out`` (results back to passives)."""
    rest = p - pow2
    if me >= pow2:
        return [Recv(me - pow2, whole)]
    if me < rest:
        return [Send(me + pow2, whole)]
    return []


def build_recursive_doubling_allreduce(p: int, n: int, part: Partition,
                                       root: int) -> Schedule:
    """Port of ``recursive_doubling_allreduce``."""
    whole = Interval("work", 0, n)
    pow2 = _largest_pow2_below(p)
    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            steps += _fold_in_steps(me, p, pow2, whole)
            if me < pow2:
                mask = 1
                while mask < pow2:
                    partner = me ^ mask
                    steps.append(Exchange(
                        send_peer=partner, send=whole,
                        recv_peer=partner, recv=whole,
                        send_first=_pair_send_first(me, partner),
                        reduce=True))
                    mask <<= 1
            steps += _fold_out_steps(me, p, pow2, whole)
        plans.append(tuple(steps))
    return Schedule("allreduce", "recursive_doubling", p, n,
                    {"in": n, "work": n}, tuple(plans), {"root": 0})


def build_recursive_halving_allreduce(p: int, n: int, part: Partition,
                                      root: int) -> Schedule:
    """Port of ``recursive_halving_allreduce`` (Rabenseifner)."""
    whole = Interval("work", 0, n)
    pow2 = _largest_pow2_below(p)
    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            steps += _fold_in_steps(me, p, pow2, whole)
            if me < pow2:
                lo, hi = 0, n
                levels: list[tuple[int, int]] = []
                mask = pow2 >> 1
                while mask >= 1:
                    partner = me ^ mask
                    levels.append((lo, hi))
                    mid = lo + (hi - lo) // 2
                    if me & mask:
                        keep, give = (mid, hi), (lo, mid)
                    else:
                        keep, give = (lo, mid), (mid, hi)
                    steps.append(Exchange(
                        send_peer=partner,
                        send=Interval("work", give[0], give[1]),
                        recv_peer=partner,
                        recv=Interval("work", keep[0], keep[1]),
                        send_first=_pair_send_first(me, partner),
                        reduce=True))
                    lo, hi = keep
                    mask >>= 1
                mask = 1
                for elo, ehi in reversed(levels):
                    partner = me ^ mask
                    mid = elo + (ehi - elo) // 2
                    if (lo, hi) == (elo, mid):
                        plo, phi = mid, ehi
                    else:
                        plo, phi = elo, mid
                    steps.append(Exchange(
                        send_peer=partner, send=Interval("work", lo, hi),
                        recv_peer=partner, recv=Interval("work", plo, phi),
                        send_first=_pair_send_first(me, partner)))
                    lo, hi = elo, ehi
                    mask <<= 1
            steps += _fold_out_steps(me, p, pow2, whole)
        plans.append(tuple(steps))
    return Schedule("allreduce", "recursive_halving", p, n,
                    {"in": n, "work": n}, tuple(plans), {"root": 0})


# --------------------------------------------------------------------- #
# Reduce builders
# --------------------------------------------------------------------- #
def build_binomial_reduce(p: int, n: int, part: Partition,
                          root: int) -> Schedule:
    whole = Interval("work", 0, n)
    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            steps += _binomial_reduce_steps(me, p, root, whole)
        plans.append(tuple(steps))
    return Schedule("reduce", "binomial", p, n, {"in": n, "work": n},
                    tuple(plans), {"root": root})


def build_rsg_reduce(p: int, n: int, part: Partition,
                     root: int) -> Schedule:
    """Ring ReduceScatter (root-relative vranks) + binomial gather
    (``reduce_scatter_gather_reduce``)."""
    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            steps += _ring_reduce_scatter_steps(me, p, part, shift=root)
            steps += _binomial_gather_steps(me, p, root, part)
        plans.append(tuple(steps))
    return Schedule("reduce", "rsg", p, n, {"in": n, "work": n},
                    tuple(plans),
                    {"part_sizes": part.sizes, "root": root})


# --------------------------------------------------------------------- #
# Broadcast builders
# --------------------------------------------------------------------- #
def build_binomial_bcast(p: int, n: int, part: Partition,
                         root: int) -> Schedule:
    whole = Interval("work", 0, n)
    plans = []
    for me in range(p):
        steps: list[Step] = []
        if me == root:
            steps.append(_init_copy(me, n))
        if p > 1:
            steps += _binomial_bcast_steps(me, p, root, whole)
        plans.append(tuple(steps))
    return Schedule("bcast", "binomial", p, n, {"in": n, "work": n},
                    tuple(plans), {"root": root})


def build_scatter_allgather_bcast(p: int, n: int, part: Partition,
                                  root: int) -> Schedule:
    """Binomial scatter of blocks + ring allgather
    (``scatter_allgather_bcast``)."""
    plans = []
    for me in range(p):
        steps: list[Step] = []
        if me == root:
            steps.append(_init_copy(me, n))
        if p > 1:
            steps += _binomial_scatter_steps(me, p, root, part)
            steps += _ring_allgather_blocks_steps(me, p, part, shift=root)
        plans.append(tuple(steps))
    return Schedule("bcast", "scatter_allgather", p, n,
                    {"in": n, "work": n}, tuple(plans),
                    {"part_sizes": part.sizes, "root": root})


# --------------------------------------------------------------------- #
# Allgather builders
# --------------------------------------------------------------------- #
def build_ring_allgather(p: int, n: int, part: Partition,
                         root: int) -> Schedule:
    """Port of ``ring_allgather`` (row exchange over the ``(p, n)``
    result, flattened)."""

    def row(i: int) -> Interval:
        return Interval("work", i * n, (i + 1) * n)

    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n, work_lo=me * n)]
        right, left = (me + 1) % p, (me - 1) % p
        send_first = _ring_send_first(me)
        for r in range(p - 1):
            steps.append(Exchange(
                send_peer=right, send=row((me - r) % p),
                recv_peer=left, recv=row((me - 1 - r) % p),
                send_first=send_first, round=r))
        plans.append(tuple(steps))
    return Schedule("allgather", "ring", p, n,
                    {"in": n, "work": p * n}, tuple(plans),
                    {"rows": p, "root": 0})


def build_bruck_allgather(p: int, n: int, part: Partition,
                          root: int) -> Schedule:
    """Port of ``bruck_allgather`` (local-index rows + final rotation)."""
    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        have, distance = 1, 1
        while have < p:
            count = min(have, p - have)
            dst = (me - distance) % p
            src = (me + distance) % p
            steps.append(Exchange(
                send_peer=dst, send=Interval("work", 0, count * n),
                recv_peer=src,
                recv=Interval("work", have * n, (have + count) * n),
                send_first=_pair_send_first(me, dst)))
            have += count
            distance <<= 1
        steps.append(Rotate("work", rows=p, shift=me))
        plans.append(tuple(steps))
    return Schedule("allgather", "bruck", p, n,
                    {"in": n, "work": p * n}, tuple(plans),
                    {"rows": p, "root": 0})


# --------------------------------------------------------------------- #
# ReduceScatter / Alltoall / Scan builders
# --------------------------------------------------------------------- #
def build_ring_reduce_scatter(p: int, n: int, part: Partition,
                              root: int) -> Schedule:
    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            steps += _ring_reduce_scatter_steps(me, p, part)
        plans.append(tuple(steps))
    return Schedule("reduce_scatter", "ring", p, n,
                    {"in": n, "work": n}, tuple(plans),
                    {"part_sizes": part.sizes, "root": 0})


def build_pairwise_alltoall(p: int, n: int, part: Partition,
                            root: int) -> Schedule:
    """Port of ``pairwise_alltoall`` (round ``r`` pairs ``me`` with
    ``(r - me) % p``; ``n`` is the per-destination row length)."""

    def row(buf: str, i: int) -> Interval:
        return Interval(buf, i * n, (i + 1) * n)

    plans = []
    for me in range(p):
        steps: list[Step] = []
        for r in range(p):
            partner = (r - me) % p
            if partner == me:
                steps.append(CopyBlock(row("in", me), row("work", me),
                                       charged=True, round=r))
            else:
                steps.append(Exchange(
                    send_peer=partner, send=row("in", partner),
                    recv_peer=partner, recv=row("work", partner),
                    send_first=_pair_send_first(me, partner), round=r))
        plans.append(tuple(steps))
    return Schedule("alltoall", "pairwise", p, n,
                    {"in": p * n, "work": p * n}, tuple(plans),
                    {"rows": p, "root": 0})


def build_recursive_doubling_scan(p: int, n: int, part: Partition,
                                  root: int) -> Schedule:
    """Port of ``recursive_doubling_scan`` (Hillis-Steele over ranks:
    all edges point upward, fold order ``op(received, local)``)."""
    whole = Interval("work", 0, n)
    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        stride = 1
        while stride < p:
            send_peer = me + stride if me + stride < p else None
            recv_peer = me - stride if me - stride >= 0 else None
            if send_peer is not None or recv_peer is not None:
                steps.append(Exchange(
                    send_peer=send_peer,
                    send=whole if send_peer is not None else None,
                    recv_peer=recv_peer,
                    recv=whole if recv_peer is not None else None,
                    send_first=True,
                    reduce=recv_peer is not None,
                    reversed_fold=True))
            stride <<= 1
        plans.append(tuple(steps))
    return Schedule("scan", "recursive_doubling", p, n,
                    {"in": n, "work": n}, tuple(plans), {"root": 0})


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
Builder = Callable[[int, int, Partition, int], Schedule]

#: (kind -> name -> builder).  Names double as ``algo="sched:<name>"``
#: labels on the :class:`~repro.core.comm.Communicator` methods.
BUILDERS: dict[str, dict[str, Builder]] = {
    "allreduce": {
        "rsag": build_rsag_allreduce,
        "reduce_bcast": build_reduce_bcast_allreduce,
        "recursive_doubling": build_recursive_doubling_allreduce,
        "recursive_halving": build_recursive_halving_allreduce,
    },
    "reduce": {
        "binomial": build_binomial_reduce,
        "rsg": build_rsg_reduce,
    },
    "bcast": {
        "binomial": build_binomial_bcast,
        "scatter_allgather": build_scatter_allgather_bcast,
    },
    "allgather": {
        "ring": build_ring_allgather,
        "bruck": build_bruck_allgather,
    },
    "reduce_scatter": {
        "ring": build_ring_reduce_scatter,
    },
    "alltoall": {
        "pairwise": build_pairwise_alltoall,
    },
    "scan": {
        "recursive_doubling": build_recursive_doubling_scan,
    },
}

#: The seed's size-based defaults: (short-vector algo, long-vector algo).
DEFAULT_ALGOS: dict[str, tuple[str, str]] = {
    "allreduce": ("reduce_bcast", "rsag"),
    "reduce": ("binomial", "rsg"),
    "bcast": ("binomial", "scatter_allgather"),
    "allgather": ("ring", "ring"),
    "reduce_scatter": ("ring", "ring"),
    "alltoall": ("pairwise", "pairwise"),
    "scan": ("recursive_doubling", "recursive_doubling"),
}

#: Kinds with at least one schedule builder.
SCHEDULED_KINDS: tuple[str, ...] = tuple(BUILDERS)


def builder_names(kind: str) -> tuple[str, ...]:
    """Builder names for ``kind``, sorted (KeyError on unknown kind)."""
    try:
        return tuple(sorted(BUILDERS[kind]))
    except KeyError:
        raise KeyError(
            f"no schedule builders for collective kind {kind!r}; "
            f"known: {sorted(BUILDERS)}") from None


@lru_cache(maxsize=1024)
def _build_cached(kind: str, name: str, p: int, n: int,
                  part_sizes: Optional[tuple[int, ...]],
                  root: int) -> Schedule:
    builder = BUILDERS[kind][name]
    part = (Partition(n, part_sizes) if part_sizes is not None
            else Partition(n, (n,)))
    return builder(p, n, part, root)


def build_schedule(kind: str, name: str, p: int, n: int, *,
                   part: Optional[Partition] = None,
                   root: int = 0) -> Schedule:
    """Build (or fetch from cache) one schedule instance.

    ``part`` is the block partition used by the ring/scatter phases
    (obtained from the communicator so the stack's partitioner — the
    paper's optimization C — is respected); whole-vector algorithms
    ignore it.  ``root`` matters for ``reduce`` and ``bcast`` only.

    ``synth/``-prefixed names resolve through the synthesizer's
    parameterized families (:mod:`repro.sched.synth`) and ``hier/``
    names through the hierarchical builders (:mod:`repro.sched.hier`)
    instead of this registry, so both are reachable wherever a builder
    name is (``algo="sched:synth/..."``, selection tables, the tuned
    stack).
    """
    if kind not in BUILDERS:
        raise KeyError(
            f"no schedule builders for collective kind {kind!r}; "
            f"known: {sorted(BUILDERS)}")
    if name.startswith("synth/"):
        from repro.sched.synth import build_synth_schedule

        return build_synth_schedule(kind, name, p, n, part=part,
                                    root=root)
    if name.startswith("hier/"):
        from repro.sched.hier import build_hier_schedule

        return build_hier_schedule(kind, name, p, n, part=part,
                                   root=root)
    if name not in BUILDERS[kind]:
        raise KeyError(
            f"unknown {kind} schedule {name!r}; "
            f"known: {builder_names(kind)} plus synthesized "
            f"'synth/...' and hierarchical 'hier/g<G>' names")
    sizes = part.sizes if part is not None else None
    return _build_cached(kind, name, p, n, sizes, root)


def all_schedules(p: int, n: int, *,
                  part: Optional[Partition] = None,
                  root: int = 0) -> Iterable[Schedule]:
    """Every builder's schedule at one ``(p, n)`` — the verifier's sweep."""
    for kind in BUILDERS:
        for name in builder_names(kind):
            yield build_schedule(kind, name, p, n, part=part, root=root)
