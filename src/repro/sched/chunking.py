"""Chunked and pipelined schedule transforms (the synthesis levers).

Two ways to grow the repertoire beyond the 13 hand-ported builders
(:mod:`repro.sched.builders`), both following SCCL's playbook
(PAPERS.md): treat an algorithm as data and rewrite it.

* :func:`chunk_schedule` — a *transform*: split every transfer of an
  existing schedule into ``c`` independently communicated sub-messages.
  Under the BSP cost model this only adds per-message constants (the
  sub-messages stay inside their original round), but under the
  *simulator* it changes rendezvous granularity: a blocking ring stalls
  in units of ``n/c`` instead of ``n`` wherever the odd-even ordering
  leaves a serialized link (odd ring sizes), so chunked rings win real
  simulated time there — see ``docs/schedules.md``.
* ``build_pipeline_*`` — *builders*: chain (linear-pipeline) algorithms
  whose round structure genuinely pipelines the chunks, the classic
  bandwidth lever the SCC paper never had.  A chunked chain moves a
  vector in ``p + c - 2`` rounds of ``n/c``-element messages, so for
  large ``n`` its critical path approaches ``n`` transferred bytes where
  the binomial trees pay ``log2(p) * n`` — the synthesizer's bread and
  butter wins.

Both emit schedules whose names carry the chunk count (``<base>+c<c>``
for transforms, ``pipeline_c<c>`` for chains); the ``synth/`` registry
prefix and name parsing live in :mod:`repro.sched.synth`.
"""

from __future__ import annotations

import dataclasses

from repro.core.blocks import Partition
from repro.sched.ir import (
    CopyBlock,
    Exchange,
    Interval,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
    Step,
)

from repro.sched.builders import _init_copy


def chunk_bounds(lo: int, hi: int, c: int) -> list[tuple[int, int]]:
    """Split ``[lo, hi)`` into ``min(c, nels)`` balanced sub-ranges.

    The leading ranges take the remainder elements (like
    :func:`repro.core.blocks.standard_partition`).  Both endpoints of a
    matched transfer split their (equal-length) intervals with this one
    function, so sub-message ``k`` has the same size on both sides —
    the property the FIFO matching of chunked schedules relies on.
    Empty ranges never appear: a zero-length interval yields one
    zero-length sub-range (the step is kept whole).
    """
    nels = hi - lo
    parts = max(1, min(c, nels))
    base, extra = divmod(nels, parts)
    bounds = []
    cur = lo
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        bounds.append((cur, cur + size))
        cur += size
    return bounds


def _split_iv(iv: Interval, c: int) -> list[Interval]:
    return [Interval(iv.buf, lo, hi)
            for lo, hi in chunk_bounds(iv.lo, iv.hi, c)]


def _chunk_step(step: Step, c: int) -> list[Step]:
    """Rewrite one step into its per-chunk sub-steps.

    Communication steps split into up to ``c`` sub-transfers carrying
    the original round tag (the BSP phase structure is preserved; only
    the message granularity changes).  An exchange whose two sides have
    different lengths (uneven partitions, Bruck) pairs sub-intervals
    index-wise and lets the shorter side run out — the tail sub-steps
    go one-sided, exactly mirroring the partner's split of the equal-
    length interval.  Local steps (copies, rotations) stay whole: they
    pay an affine per-call cost, so splitting them only adds startup.
    """
    if isinstance(step, (Send, Recv, ReduceRecv)):
        ivs = _split_iv(step.data, c)
        if len(ivs) == 1:
            return [step]
        return [dataclasses.replace(step, data=iv) for iv in ivs]
    if isinstance(step, Exchange):
        sends = _split_iv(step.send, c) if step.send is not None else []
        recvs = _split_iv(step.recv, c) if step.recv is not None else []
        parts = max(len(sends), len(recvs))
        if parts == 1:
            return [step]
        out: list[Step] = []
        for k in range(parts):
            s = sends[k] if k < len(sends) else None
            r = recvs[k] if k < len(recvs) else None
            out.append(Exchange(
                send_peer=step.send_peer if s is not None else None,
                send=s,
                recv_peer=step.recv_peer if r is not None else None,
                recv=r,
                send_first=step.send_first,
                reduce=step.reduce and r is not None,
                reversed_fold=step.reversed_fold and r is not None,
                round=step.round))
        return out
    if isinstance(step, (CopyBlock, Rotate)):
        return [step]
    raise TypeError(f"unknown schedule step {step!r}")


def chunk_schedule(sched: Schedule, c: int) -> Schedule:
    """Split every transfer of ``sched`` into ``c`` sub-messages.

    ``c <= 1`` returns the schedule unchanged.  The result is renamed
    ``<name>+c<c>`` and records the chunk layout in ``meta`` (the cost
    memo keys on it — see :func:`repro.sched.cost.schedule_cost_key`).
    """
    if c <= 1:
        return sched
    plans = tuple(
        tuple(sub for step in plan for sub in _chunk_step(step, c))
        for plan in sched.plans)
    meta = dict(sched.meta)
    meta["chunks"] = c
    meta["base"] = sched.name
    return Schedule(sched.kind, f"{sched.name}+c{c}", sched.p, sched.n,
                    dict(sched.buffers), plans, meta)


# --------------------------------------------------------------------- #
# Pipelined chain builders
# --------------------------------------------------------------------- #
def _chain_meta(root: int, c: int) -> dict:
    return {"root": root, "chunks": c}


def build_pipeline_bcast(p: int, n: int, part: Partition, root: int,
                         c: int) -> Schedule:
    """Chunked linear-pipeline broadcast along the rank chain.

    Chunk ``k`` crosses the hop from chain position ``d`` to ``d + 1``
    in round ``d + k``; every interior rank forwards chunk ``k - 1``
    while receiving chunk ``k`` in one full-duplex exchange, so the
    whole vector reaches the last rank after ``p + c - 2`` rounds of
    ``n/c``-element messages.
    """
    bounds = chunk_bounds(0, n, c)
    parts = len(bounds)

    def iv(k: int) -> Interval:
        return Interval("work", bounds[k][0], bounds[k][1])

    plans = []
    for me in range(p):
        d = (me - root) % p
        steps: list[Step] = []
        if me == root:
            steps.append(_init_copy(me, n))
            if p > 1:
                nxt = (me + 1) % p
                for k in range(parts):
                    steps.append(Send(nxt, iv(k), round=k))
        elif d == p - 1:
            prev = (me - 1) % p
            for k in range(parts):
                steps.append(Recv(prev, iv(k), round=d - 1 + k))
        else:
            prev, nxt = (me - 1) % p, (me + 1) % p
            steps.append(Recv(prev, iv(0), round=d - 1))
            for k in range(1, parts):
                steps.append(Exchange(
                    send_peer=nxt, send=iv(k - 1),
                    recv_peer=prev, recv=iv(k),
                    send_first=True, round=d - 1 + k))
            steps.append(Send(nxt, iv(parts - 1), round=d - 1 + parts))
        plans.append(tuple(steps))
    return Schedule("bcast", f"pipeline_c{c}", p, n, {"in": n, "work": n},
                    tuple(plans), _chain_meta(root, c))


def build_pipeline_reduce(p: int, n: int, part: Partition, root: int,
                          c: int) -> Schedule:
    """Chunked linear-pipeline reduction down the rank chain to ``root``.

    The mirror image of :func:`build_pipeline_bcast`: partial sums flow
    from the far end of the chain toward the root, each interior rank
    folding chunk ``k`` while forwarding the already-folded chunk
    ``k - 1``.
    """
    bounds = chunk_bounds(0, n, c)
    parts = len(bounds)

    def iv(k: int) -> Interval:
        return Interval("work", bounds[k][0], bounds[k][1])

    plans = []
    for me in range(p):
        d = (me - root) % p
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            if d == p - 1:
                down = (me - 1) % p
                for k in range(parts):
                    steps.append(Send(down, iv(k), round=k))
            elif d == 0:
                up = (me + 1) % p
                for k in range(parts):
                    steps.append(ReduceRecv(up, iv(k),
                                            round=p - 2 + k))
            else:
                up, down = (me + 1) % p, (me - 1) % p
                base = p - 2 - d
                steps.append(ReduceRecv(up, iv(0), round=base))
                for k in range(1, parts):
                    steps.append(Exchange(
                        send_peer=down, send=iv(k - 1),
                        recv_peer=up, recv=iv(k),
                        send_first=True, reduce=True,
                        round=base + k))
                steps.append(Send(down, iv(parts - 1),
                                  round=base + parts))
        plans.append(tuple(steps))
    return Schedule("reduce", f"pipeline_c{c}", p, n, {"in": n, "work": n},
                    tuple(plans), _chain_meta(root, c))


def build_pipeline_scan(p: int, n: int, part: Partition, root: int,
                        c: int) -> Schedule:
    """Chunked linear-pipeline inclusive prefix scan.

    Rank ``me`` folds the incoming prefix of ranks ``0..me-1`` into its
    operand chunk by chunk (``op(received, local)``, the scan
    convention) and forwards the completed prefix downstream — ``p + c``
    rounds of ``n/c`` messages against recursive doubling's
    ``log2(p)`` rounds of whole vectors.
    """
    bounds = chunk_bounds(0, n, c)
    parts = len(bounds)

    def iv(k: int) -> Interval:
        return Interval("work", bounds[k][0], bounds[k][1])

    plans = []
    for me in range(p):
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            if me == 0:
                for k in range(parts):
                    steps.append(Send(me + 1, iv(k), round=k))
            else:
                fold = dict(reduce=True, reversed_fold=True)
                steps.append(Exchange(
                    send_peer=None, send=None,
                    recv_peer=me - 1, recv=iv(0),
                    send_first=False, round=me - 1, **fold))
                for k in range(1, parts):
                    if me < p - 1:
                        steps.append(Exchange(
                            send_peer=me + 1, send=iv(k - 1),
                            recv_peer=me - 1, recv=iv(k),
                            send_first=True, round=me - 1 + k, **fold))
                    else:
                        steps.append(Exchange(
                            send_peer=None, send=None,
                            recv_peer=me - 1, recv=iv(k),
                            send_first=False, round=me - 1 + k, **fold))
                if me < p - 1:
                    steps.append(Send(me + 1, iv(parts - 1),
                                      round=me - 1 + parts))
        plans.append(tuple(steps))
    return Schedule("scan", f"pipeline_c{c}", p, n, {"in": n, "work": n},
                    tuple(plans), _chain_meta(0, c))


def build_pipeline_allreduce(p: int, n: int, part: Partition, root: int,
                             c: int) -> Schedule:
    """Pipelined chain reduce to rank 0 chained into a pipelined bcast.

    Included for search-space breadth: the ring reduce-scatter +
    allgather already moves only ``2n`` bytes per rank, so this wins
    rarely — but the synthesizer prices it like any other candidate
    instead of us deciding by hand.
    """
    red = build_pipeline_reduce(p, n, part, 0, c)
    bc = build_pipeline_bcast(p, n, part, 0, c)
    parts = len(chunk_bounds(0, n, c))
    offset = p + parts - 1  # first free round index after the reduce
    plans = []
    for me in range(p):
        steps = list(red.plans[me])
        for step in bc.plans[me]:
            if isinstance(step, CopyBlock):
                continue  # the reduce phase already staged "work"
            steps.append(dataclasses.replace(
                step, round=step.round + offset))
        plans.append(tuple(steps))
    return Schedule("allreduce", f"pipeline_c{c}", p, n,
                    {"in": n, "work": n}, tuple(plans), _chain_meta(0, c))


#: kind -> chain-pipeline builder (parameterized over the chunk count).
PIPELINE_BUILDERS = {
    "bcast": build_pipeline_bcast,
    "reduce": build_pipeline_reduce,
    "scan": build_pipeline_scan,
    "allreduce": build_pipeline_allreduce,
}
