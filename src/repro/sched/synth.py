"""Combinatorial schedule synthesis: searching beyond the hand repertoire.

SCCL (PAPERS.md) phrases collective synthesis as a search over
*k-synchronous* algorithms: how many rounds (synchronization phases),
how many steps per round, how finely the payload is chunked.  This
module runs that search on top of the schedule IR:

* the **candidate space** for a ``(kind, p, n)`` point is every hand
  builder, every chunked transform of a hand builder
  (:func:`repro.sched.chunking.chunk_schedule`, ``c`` from
  :data:`CHUNK_GRID_TRANSFORM`) and — for the chain-pipelinable kinds —
  every pipelined chain builder (``c`` from
  :data:`CHUNK_GRID_PIPELINE`).  Each candidate is a complete
  k-synchronous schedule: its round tags *are* its synchronization
  structure (``rounds`` in :class:`Candidate`);
* candidates are **pruned by the BSP cost model**
  (:func:`repro.sched.cost.estimate_schedule_cost`, memoized at both
  the primitive and the whole-schedule level), so pricing one costs
  about a millisecond and a full search stays interactive;
* the result is the per-``n`` winner plus a **Pareto frontier** over
  the latency axis (estimated cost at ``n = 1``, where per-message
  constants dominate) and the bandwidth axis (estimated cost at the
  requested ``n``): a schedule survives iff nothing beats it on both.

Synthesized names are reachable everywhere a builder name is — the
registry prefix is ``synth/``:

* ``synth/pipeline_c<c>`` — pipelined chain builder with ``c`` chunks
  (kinds in :data:`~repro.sched.chunking.PIPELINE_BUILDERS`);
* ``synth/<base>+c<c>`` — the hand builder ``<base>`` with every
  transfer split into ``c`` sub-messages.

``build_schedule`` resolves them (so ``algo="sched:synth/..."`` works
on every communicator), the selector prices them, and ``python -m
repro tune`` folds the winners into the committed selection table.
Every emitted schedule passes :mod:`repro.analysis.schedverify` and the
numpy interpreter (:mod:`repro.sched.interp`) — ``verify=True`` makes
:func:`synthesize` check that on the spot.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

from repro.core.blocks import Partition, balanced_partition
from repro.hw.config import SCCConfig
from repro.hw.timing import LatencyModel
from repro.sched.builders import build_schedule, builder_names
from repro.sched.chunking import PIPELINE_BUILDERS, chunk_schedule
from repro.sched.cost import estimate_schedule_cost
from repro.sched.ir import Schedule

#: Registry prefix for synthesized schedule names.
SYNTH_PREFIX = "synth/"

#: Chunk counts tried for the chunked transform of each hand builder.
#: Kept small: under the BSP model a transform never beats its base (the
#: sub-messages stay in their original rounds, paying extra per-message
#: constants) — the variants exist for the simulator-level granularity
#: effects and as search-space breadth, not as expected winners.
CHUNK_GRID_TRANSFORM: tuple[int, ...] = (2, 4)

#: Chunk counts tried for the pipelined chain builders, where chunking
#: changes the round structure and genuinely wins at large ``n``.
CHUNK_GRID_PIPELINE: tuple[int, ...] = (2, 4, 8, 16, 32)

#: Reference size for the latency axis of the Pareto frontier.
LATENCY_REF_SIZE = 1


def is_synth_name(name: str) -> bool:
    return name.startswith(SYNTH_PREFIX)


def parse_synth_name(kind: str, name: str) -> tuple[Optional[str], int]:
    """``synth/...`` -> ``(base_builder_or_None, chunks)``.

    ``base`` is the underlying hand builder for chunked transforms and
    ``None`` for the pipeline family.  Raises KeyError (with the known
    grammar) for anything else.
    """
    def _bad(reason: str) -> KeyError:
        return KeyError(
            f"unknown {kind} schedule {name!r} ({reason}); synthesized "
            f"names are 'synth/pipeline_c<c>' or 'synth/<base>+c<c>' "
            f"with <base> in {builder_names(kind)}")

    if not is_synth_name(name):
        raise _bad("missing synth/ prefix")
    body = name[len(SYNTH_PREFIX):]
    if body.startswith("pipeline_c"):
        digits = body[len("pipeline_c"):]
        if not digits.isdigit() or int(digits) < 1:
            raise _bad("malformed chunk count")
        if kind not in PIPELINE_BUILDERS:
            raise _bad(f"no pipeline builder for kind {kind!r}")
        return None, int(digits)
    base, sep, digits = body.rpartition("+c")
    if not sep or not digits.isdigit() or int(digits) < 1:
        raise _bad("malformed name")
    if base not in builder_names(kind):
        raise _bad(f"unknown base builder {base!r}")
    return base, int(digits)


def base_builder(kind: str, name: str) -> Optional[str]:
    """The hand builder a chunked transform wraps (None for pipelines)."""
    base, _ = parse_synth_name(kind, name)
    return base


@lru_cache(maxsize=1024)
def _build_synth_cached(kind: str, name: str, p: int, n: int,
                        part_sizes: Optional[tuple[int, ...]],
                        root: int) -> Schedule:
    base, c = parse_synth_name(kind, name)
    part = (Partition(n, part_sizes) if part_sizes is not None
            else Partition(n, (n,)))
    if base is None:
        sched = PIPELINE_BUILDERS[kind](p, n, part, root, c)
    else:
        sched = chunk_schedule(
            build_schedule(kind, base, p, n, part=part, root=root), c)
    # The schedule's own name is the full registry name (cost memo keys
    # and span labels stay unambiguous); chunk layout is already in meta.
    return dataclasses.replace(sched, name=name)


def build_synth_schedule(kind: str, name: str, p: int, n: int, *,
                         part: Optional[Partition] = None,
                         root: int = 0) -> Schedule:
    """Build (or fetch from cache) one synthesized schedule instance."""
    sizes = part.sizes if part is not None else None
    return _build_synth_cached(kind, name, p, n, sizes, root)


def candidate_names(kind: str, p: int, n: int) -> tuple[str, ...]:
    """The synthesized candidates searched at one ``(kind, p, n)`` point.

    Chunk counts above ``n`` are skipped (they clamp to ``n`` chunks and
    duplicate a smaller candidate); single-rank problems have nothing to
    pipeline or chunk.
    """
    if p < 2 or n < 2:
        return ()
    names = []
    for base in builder_names(kind):
        for c in CHUNK_GRID_TRANSFORM:
            if c <= n:
                names.append(f"{SYNTH_PREFIX}{base}+c{c}")
    if kind in PIPELINE_BUILDERS:
        for c in CHUNK_GRID_PIPELINE:
            if c <= n:
                names.append(f"{SYNTH_PREFIX}pipeline_c{c}")
    return tuple(names)


@dataclass(frozen=True)
class Candidate:
    """One priced schedule in a synthesis search."""

    name: str
    synthesized: bool
    cost: int           # BSP estimate at the requested n (bandwidth axis)
    latency_cost: int   # BSP estimate at n = LATENCY_REF_SIZE
    rounds: int         # k of the k-synchronous schedule
    steps: int          # total steps over all ranks

    def dominates(self, other: "Candidate") -> bool:
        return (self.cost <= other.cost
                and self.latency_cost <= other.latency_cost
                and (self.cost < other.cost
                     or self.latency_cost < other.latency_cost))


@dataclass(frozen=True)
class SynthResult:
    """Winner + Pareto frontier for one ``(kind, p, n)`` point."""

    kind: str
    p: int
    n: int
    candidates: tuple[Candidate, ...]   # sorted by cost
    frontier: tuple[Candidate, ...]     # Pareto-optimal, by latency_cost

    @property
    def best(self) -> Candidate:
        return self.candidates[0]

    @property
    def best_hand(self) -> Candidate:
        return next(c for c in self.candidates if not c.synthesized)


def _schedule_rounds(sched: Schedule) -> int:
    rounds = {step.round for plan in sched.plans for step in plan
              if step.round is not None}
    return len(rounds)


def default_model(config: Optional[SCCConfig] = None) -> LatencyModel:
    """A fresh memoized model over the config's topology (tune's model)."""
    config = config if config is not None else SCCConfig()
    return LatencyModel(config, config.resolved_topology())


def synthesize(kind: str, p: int, n: int,
               model: Optional[LatencyModel] = None, *,
               blocking: bool = False,
               verify: bool = False) -> SynthResult:
    """Search the candidate space at one point and rank it.

    Prices every hand builder and every synthesized candidate at ``n``
    (the bandwidth axis) and at :data:`LATENCY_REF_SIZE` (the latency
    axis), returning all candidates cost-sorted plus the Pareto
    frontier.  ``verify=True`` additionally runs every *synthesized*
    candidate through the static verifier and the numpy interpreter
    before it may appear in the result — the ``synth --smoke`` gate.
    """
    model = model if model is not None else default_model()
    names = [(name, False) for name in builder_names(kind)]
    names += [(name, True) for name in candidate_names(kind, p, n)]
    cands = []
    for name, synthesized in names:
        sched = _resolve(kind, name, p, n)
        if verify and synthesized:
            from repro.analysis.schedverify import assert_valid_schedule
            from repro.sched.interp import check_schedule_numeric
            assert_valid_schedule(sched)
            check_schedule_numeric(sched)
        n_lat = min(LATENCY_REF_SIZE, n)
        cands.append(Candidate(
            name=name, synthesized=synthesized,
            cost=estimate_schedule_cost(sched, model, blocking=blocking),
            latency_cost=estimate_schedule_cost(
                _resolve(kind, name, p, n_lat), model, blocking=blocking),
            rounds=_schedule_rounds(sched),
            steps=sched.total_steps()))
    cands.sort(key=lambda c: (c.cost, c.latency_cost, c.name))
    frontier = tuple(sorted(
        (c for c in cands
         if not any(o.dominates(c) for o in cands)),
        key=lambda c: (c.latency_cost, c.cost, c.name)))
    return SynthResult(kind, p, n, tuple(cands), frontier)


def _resolve(kind: str, name: str, p: int, n: int) -> Schedule:
    part = balanced_partition(n, p)
    if is_synth_name(name):
        return build_synth_schedule(kind, name, p, n, part=part)
    return build_schedule(kind, name, p, n, part=part)


def synth_repertoire(ps: Sequence[int] = (2, 3, 5, 8, 48),
                     sizes: Sequence[int] = (1, 2, 8, 70)):
    """Every synthesized candidate over a small grid (the verify sweep).

    Mirrors :func:`repro.sched.builders.all_schedules` for the
    synthesized namespace; ``tools/run_static_checks.py`` and the
    property suite push each yielded schedule through the verifier.
    """
    from repro.sched.builders import SCHEDULED_KINDS

    for p in ps:
        for n in sizes:
            part = balanced_partition(n, p)
            for kind in SCHEDULED_KINDS:
                for name in candidate_names(kind, p, n):
                    root = 1 if kind in ("bcast", "reduce") and p > 2 else 0
                    yield build_synth_schedule(kind, name, p, n,
                                               part=part, root=root)
