"""RCKMPI: the MPICH-based full MPI implementation for the SCC (Section III).

Modeled at the channel level: an eager, packetized MPB channel with heavy
per-call and per-packet software overhead, byte-granular transfers (no
cache-line padding, hence the *smooth* curves of Fig. 9), and bounded
channel windows.  Its collectives reuse the same MPICH-family algorithms
as RCCE_comm (ring ReduceScatter/Allgather, binomial trees, pairwise
Alltoall) — the 2x–5x latency gap to the RCCE-based stacks comes from the
stack's software weight, not the algorithm shapes.
"""

from repro.rckmpi.api import RCKMPICommunicator
from repro.rckmpi.channel import RCKMPIP2P

__all__ = ["RCKMPICommunicator", "RCKMPIP2P"]
