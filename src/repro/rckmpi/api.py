"""RCKMPI's public face: a Communicator over the packetized channel.

RCKMPI "implements the complete MPI specification and contains
sophisticated algorithms for collective operations [which] provide a set
of routines for different message sizes and pick the one that performs
best at runtime" (Section III).  We model that selection with the same
long/short thresholds as RCCE_comm and the same MPICH-family algorithms;
the performance difference against the RCCE stacks (2x–5x, except the
competitive Alltoall) is carried by the channel's software weight.
"""

from __future__ import annotations

from repro.core.blocks import balanced_partition
from repro.core.comm import Communicator
from repro.hw.machine import Machine
from repro.rckmpi.channel import RCKMPIP2P


class RCKMPICommunicator(Communicator):
    """Drop-in communicator for the ``rckmpi`` stack."""

    def __init__(self, machine: Machine):
        super().__init__(
            machine,
            RCKMPIP2P(machine),
            # MPICH spreads the remainder across ranks (balanced).
            partitioner=balanced_partition,
            name="rckmpi",
        )
