"""RCKMPI's MPB channel: eager, packetized, byte-granular point-to-point.

Differences from the RCCE-family protocol that matter for the figures:

* **Eager buffering** — a send completes once its packets are in the
  channel; no rendezvous with the receiver (MPICH ch3-style).  Cyclic
  exchange patterns therefore never deadlock regardless of call order.
* **Byte granularity** — packets carry arbitrary byte counts; there is no
  padded-tail-line extra call, so RCKMPI's latency scales smoothly with
  the vector size instead of spiking with period 4 (Section V-A).
* **Software weight** — every call pays ``rckmpi_call_cycles`` and every
  packet ``rckmpi_packet_cycles``; this models the full MPI matching
  machinery and makes the stack 2x–5x slower than the RCCE baseline.
* **Bounded window** — each (src, dst) channel holds at most
  ``WINDOW_PACKETS`` in-flight packets (the MPB slot is finite); senders
  stall on a full window.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

import numpy as np

from repro.hw.machine import CoreEnv, Machine
from repro.ircce.requests import NonBlockingLayer, Request
from repro.rcce.api import record_message
from repro.sim.events import Interrupt
from repro.sim.resources import Semaphore

#: In-flight packets per directed channel.
WINDOW_PACKETS = 2


class RCKMPIP2P(NonBlockingLayer):
    """The channel layer, exposing the non-blocking request interface."""

    name = "rckmpi"
    supports_wildcard = False
    max_outstanding = None

    def issue_cycles(self) -> int:
        return self.machine.config.rckmpi_call_cycles

    def complete_cycles(self) -> int:
        # Completion bookkeeping is folded into the per-packet costs.
        return self.machine.config.rckmpi_call_cycles // 8

    def test_cycles(self) -> int:
        return self.machine.config.rckmpi_call_cycles // 16

    # -- channel state -------------------------------------------------------
    def _channel(self, src_core: int, dst_core: int):
        chans = self.machine.services.setdefault("rckmpi.chan", {})
        key = (src_core, dst_core)
        if key not in chans:
            chans[key] = {
                "queue": deque(),
                "avail": self.machine.sim.gate(name=f"rckmpi.avail.{key}"),
                "window": Semaphore(self.machine.sim, WINDOW_PACKETS,
                                    name=f"rckmpi.win.{key}"),
            }
        return chans[key]

    def _packet_cost(self, env: CoreEnv, peer_core: int, nbytes: int) -> int:
        cfg = env.config
        byte_cycles = (nbytes * cfg.rckmpi_byte_core_cycles_x8 + 7) // 8
        return (env.latency.core_cycles(cfg.rckmpi_packet_cycles + byte_cycles)
                + env.latency.mpb_access(env.core_id, peer_core))

    def _packets(self, nbytes: int) -> list[int]:
        """Packet sizes covering an ``nbytes`` message (>= one packet)."""
        size = self.machine.config.rckmpi_packet_bytes
        if nbytes == 0:
            return [0]
        sizes = [size] * (nbytes // size)
        if nbytes % size:
            sizes.append(nbytes % size)
        return sizes

    # -- protocol bodies ----------------------------------------------------
    def _send_proc(self, env: CoreEnv, req: Request, raw: np.ndarray,
                   dst: int) -> Generator:
        lock = self._send_lock(env.core_id)
        grant = lock.acquire()
        try:
            yield grant
        except Interrupt:
            lock.abandon(grant)
            return None
        dst_core = env.core_of_rank(dst)
        chan = self._channel(env.core_id, dst_core)
        record_message(self.machine, env.core_id, dst_core, int(raw.size))
        try:
            offset = 0
            for size in self._packets(int(raw.size)):
                yield chan["window"].acquire()
                yield from env.consume(
                    self._packet_cost(env, dst_core, size), "copy")
                chan["queue"].append(raw[offset:offset + size].copy())
                chan["avail"].set()
                offset += size
        except Interrupt:
            return None
        finally:
            lock.release()
        self._retire(env, "send")
        return None

    def _recv_proc(self, env: CoreEnv, req: Request, raw_out: np.ndarray,
                   src: int) -> Generator:
        src_core = env.core_of_rank(src)
        chan = self._channel(src_core, env.core_id)
        # Concurrent receives from one channel drain it in issue order.
        lock = self._recv_lock(env.core_id, src_core)
        grant = lock.acquire()
        try:
            yield grant
        except Interrupt:
            lock.abandon(grant)
            return None
        try:
            yield from self._drain(env, req, raw_out, src_core, chan)
        finally:
            lock.release()
        return None

    def _drain(self, env: CoreEnv, req: Request, raw_out: np.ndarray,
               src_core: int, chan) -> Generator:
        try:
            offset = 0
            for size in self._packets(int(raw_out.size)):
                while not chan["queue"]:
                    chan["avail"].clear()
                    yield from env.core.wait(
                        chan["avail"].wait_true(
                            env.latency.mpb_access(env.core_id,
                                                   env.core_id)),
                        "wait_flag")
                packet = chan["queue"].popleft()
                chan["window"].release()
                if packet.size != size:
                    raise ValueError(
                        f"rckmpi packet size mismatch: expected {size}, "
                        f"got {packet.size} (mixed message sizes on one "
                        "channel?)")
                yield from env.consume(
                    self._packet_cost(env, src_core, size), "copy")
                raw_out[offset:offset + packet.size] = packet
                offset += packet.size
        except Interrupt:
            return None
        self._retire(env, "recv")
        return None


def reset_channels(machine: Machine) -> None:
    """Drop all channel state (test helper)."""
    machine.services.pop("rckmpi.chan", None)
