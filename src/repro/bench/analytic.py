"""The analytic benchmark engine: pricing sweep points without simulating.

Every sweep point the benchmark layer runs is one deterministic SPMD
simulation (:func:`~repro.bench.runner.measure_collective`).  The analytic
engine replaces that simulation — for the points it can express — with a
closed-form estimate: the point's algorithm is resolved to a schedule from
the builder repertoire (:mod:`repro.sched.builders`) and priced through
the BSP cost model (:mod:`repro.sched.cost`) over the machine's memoized
:class:`~repro.hw.timing.LatencyModel`, *plus* the calibrated per-call
software overheads of the point's stack (RCCE call cycles, request
issue/complete cycles, collective entry).  One point costs microseconds
of wall-clock instead of seconds — three to four orders of magnitude
faster than the simulator — at the price of ignoring cross-round
pipelining skew.

Where the estimate lands relative to the simulator, per algorithm family,
and when each engine is the right tool is documented in
``docs/engines.md``.  The contract enforced by
``tests/bench/test_analytic.py``: for every expressible (kind, stack)
at p in {2, 47, 48} the estimate stays within
:data:`DEFAULT_DRIFT_TOL` relative error of the simulated latency.

Fallback points
---------------
:func:`analytic_latency_us` returns ``None`` (caller must simulate) for
points outside the model:

* ``barrier`` (no schedule builder; latency is all flag traffic),
* the ``rckmpi`` stack (a different channel model entirely),
* the MPB-direct Allreduce (``algo="mpb"`` or the ``mpb`` stack's
  long-vector default — no builder exists for it),
* non-identity ``rank_order`` (the cost model prices rank *r* at core
  *r*),
* single-rank launches and unknown algorithm names (the simulator is
  also the authority on raising the right error).

Engine selection
----------------
``run_sweep``/``sweep``/``bench`` accept ``engine``:

* ``"sim"`` (default) — simulate every point; bit-identical to the seed.
* ``"analytic"`` — estimate every expressible point, simulate the rest.
* ``"auto"`` — like ``analytic``, but a deterministic sample of the
  estimated points (``REPRO_BENCH_VALIDATE``, default 3 per sweep) is
  *also* simulated and the relative drift checked against
  ``REPRO_BENCH_DRIFT_TOL`` (default :data:`DEFAULT_DRIFT_TOL`).  Drift
  beyond tolerance raises :class:`EngineDriftError` naming the offending
  points — the estimate is never silently wrong by more than the
  tolerance on the validated sample.

Analytic estimates never touch the on-disk result cache: the cache
stores *simulated* latencies and an estimate must not shadow one (or
vice versa).  Re-pricing a point analytically is cheaper than a cache
read anyway.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.hw.timing import LatencyModel
from repro.sched.builders import BUILDERS, DEFAULT_ALGOS
from repro.sched.cost import SoftwareOverhead, estimate_schedule_cost
from repro.sched.engine import parse_sched_algo, schedule_for
from repro.sim.clock import ps_to_us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.executor import SweepPoint
    from repro.core.comm import Communicator

#: Engine names accepted by the sweep layer.
ENGINES = ("sim", "analytic", "auto")

#: Default relative-error tolerance for auto-mode cross-validation.
#: Calibrated against the full (kind x stack x size) grid at
#: p in {2, 47, 48}: typical drift is within +/-15%, the worst measured
#: point (blocking reduce_scatter, short vectors) sits at +34%, and the
#: bound adds margin on top of that — see docs/engines.md for the
#: per-family drift table this was derived from.
DEFAULT_DRIFT_TOL = 0.40

#: Default number of points cross-validated per auto-mode sweep.
DEFAULT_VALIDATE = 3


class EngineDriftError(RuntimeError):
    """Auto-mode cross-validation found analytic estimates out of tolerance.

    Carries ``drifts``: one ``(point_description, analytic_us, sim_us,
    relative_drift)`` tuple per validated point that exceeded the
    tolerance, worst first.
    """

    def __init__(self, drifts: list[tuple[str, float, float, float]],
                 tolerance: float):
        self.drifts = drifts
        self.tolerance = tolerance
        worst = "; ".join(
            f"{desc}: analytic {ana:.2f}us vs sim {sim:.2f}us "
            f"({drift:+.1%})"
            for desc, ana, sim, drift in drifts[:3])
        more = f" (+{len(drifts) - 3} more)" if len(drifts) > 3 else ""
        super().__init__(
            f"analytic engine drifted beyond +/-{tolerance:.0%} of the "
            f"simulator on {len(drifts)} validated point(s): {worst}{more}. "
            f"Re-run with --engine sim, or raise REPRO_BENCH_DRIFT_TOL "
            f"if the deviation is understood (see docs/engines.md).")


def default_validate() -> int:
    """The ``REPRO_BENCH_VALIDATE`` knob: sampled sim runs per auto sweep
    (0 disables cross-validation)."""
    value = os.environ.get("REPRO_BENCH_VALIDATE",
                           str(DEFAULT_VALIDATE)).strip()
    try:
        count = int(value)
    except ValueError:
        raise ValueError(
            f"malformed REPRO_BENCH_VALIDATE value {value!r}: expected "
            f"a non-negative point count") from None
    if count < 0:
        raise ValueError(
            f"REPRO_BENCH_VALIDATE must be >= 0, got {count}")
    return count


def default_drift_tol() -> float:
    """The ``REPRO_BENCH_DRIFT_TOL`` knob: relative-error bound for
    auto-mode cross-validation."""
    value = os.environ.get("REPRO_BENCH_DRIFT_TOL",
                           str(DEFAULT_DRIFT_TOL)).strip()
    try:
        tol = float(value)
    except ValueError:
        raise ValueError(
            f"malformed REPRO_BENCH_DRIFT_TOL value {value!r}: expected "
            f"a relative error like 0.35") from None
    if tol <= 0:
        raise ValueError(
            f"REPRO_BENCH_DRIFT_TOL must be positive, got {tol}")
    return tol


def validation_sample(count: int, k: int) -> list[int]:
    """``k`` indices spread deterministically over ``range(count)``.

    Always includes the first and last index when ``k >= 2`` — the
    extremes of a size sweep are where the estimate is most likely to
    drift.  The same (count, k) always yields the same sample, keeping
    auto-mode sweeps reproducible.
    """
    if count <= 0 or k <= 0:
        return []
    if k >= count:
        return list(range(count))
    if k == 1:
        return [count // 2]
    step = (count - 1) / (k - 1)
    return sorted({round(i * step) for i in range(k)})


# --------------------------------------------------------------------- #
# Stack introspection
# --------------------------------------------------------------------- #
@dataclass
class _StackContext:
    """Everything needed to price points of one (stack, config)."""

    comm: "Communicator"
    model: LatencyModel
    overhead: SoftwareOverhead


#: (stack, config key) -> context.  Bounded: the bench layer uses a
#: handful of configs per process (ablations build one per variant).
_CONTEXTS: dict[tuple[str, str], _StackContext] = {}
_CONTEXT_LIMIT = 64


def _config_key(config: SCCConfig) -> str:
    return json.dumps(asdict(config), sort_keys=True, default=repr)


def stack_overhead(comm: "Communicator",
                   model: LatencyModel) -> SoftwareOverhead:
    """The per-call software costs of ``comm``'s point-to-point stack.

    Blocking RCCE pays its send/recv call cycles per message; the
    non-blocking layers pay issue + completion cycles per request (both
    are charged in full — the request's CPU work does not overlap with
    anything in the round-synchronous algorithms).  Every stack pays the
    collective-layer entry cost once per collective.
    """
    config = comm.machine.config
    if comm.blocking:
        send_ps = model.core_cycles(config.rcce_send_call_cycles)
        recv_ps = model.core_cycles(config.rcce_recv_call_cycles)
    else:
        per_request = (comm.p2p.issue_cycles()
                       + comm.p2p.complete_cycles())
        send_ps = recv_ps = model.core_cycles(per_request)
    return SoftwareOverhead(
        send_ps=send_ps, recv_ps=recv_ps,
        call_ps=model.core_cycles(config.collective_call_cycles))


def _stack_context(stack: str, config: SCCConfig) -> Optional[_StackContext]:
    """Build (or fetch) the pricing context; None for unpriceable stacks."""
    if stack == "rckmpi":
        return None
    key = (stack, _config_key(config))
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        from repro.core.registry import make_communicator

        try:
            comm = make_communicator(Machine(config), stack)
        except KeyError:
            return None
        if len(_CONTEXTS) >= _CONTEXT_LIMIT:
            _CONTEXTS.clear()
        ctx = _CONTEXTS[key] = _StackContext(
            comm=comm, model=comm.machine.latency,
            overhead=stack_overhead(comm, comm.machine.latency))
    return ctx


def _resolve_schedule_name(comm: "Communicator", kind: str, size: int,
                           cores: int, algo: Optional[str]) -> Optional[str]:
    """The builder name the point would execute, or None (must simulate).

    Mirrors the communicator dispatch exactly: explicit ``sched:<name>``
    labels pass through, explicit native names map to the builder of the
    same name (every native algorithm has a bit-identical builder port —
    ``tests/sched/test_engine_golden.py``), and ``None`` resolves the
    stack's default: the tuned stack's table pick, or the seed's
    512-byte short/long rule (``mpb`` long vectors have no builder and
    fall back to the simulator).
    """
    from repro.sched.select import TunedCommunicator

    if algo is None:
        if isinstance(comm, TunedCommunicator):
            algo = comm.pick_algo(kind, cores, size)
        else:
            nbytes = size * 8  # doubles, like Communicator._is_long
            long = nbytes >= comm.long_threshold_bytes
            if kind == "allreduce" and comm.use_mpb_allreduce and long:
                return None  # MPB-direct: no builder
            short_algo, long_algo = DEFAULT_ALGOS[kind]
            algo = long_algo if long else short_algo
    name = parse_sched_algo(algo)
    if name is None:
        name = algo  # native label; builders share the native names
    if name.startswith("hier/"):
        from repro.sched.hier import parse_hier_name

        try:
            parse_hier_name(kind, name)
        except KeyError:
            return None
        return name
    if name not in BUILDERS.get(kind, ()):
        return None
    return name


# --------------------------------------------------------------------- #
# Pricing
# --------------------------------------------------------------------- #
def analytic_latency_us(point: "SweepPoint") -> Optional[float]:
    """Closed-form latency estimate for one sweep point (microseconds).

    Returns ``None`` when the point is outside the analytic model (see
    the module docstring for the exact fallback list); the caller is
    expected to simulate such points instead.
    """
    if point.kind == "barrier" or point.cores <= 1:
        return None
    if point.rank_order is not None and \
            tuple(point.rank_order) != tuple(range(point.cores)):
        return None
    ctx = _stack_context(point.stack, point.config)
    if ctx is None:
        return None
    name = _resolve_schedule_name(ctx.comm, point.kind, point.size,
                                  point.cores, point.algo)
    if name is None:
        return None
    sched = schedule_for(ctx.comm, point.kind, name, point.cores,
                         point.size)
    total_ps = estimate_schedule_cost(sched, ctx.model,
                                      blocking=ctx.comm.blocking,
                                      overhead=ctx.overhead)
    return ps_to_us(total_ps)


def price_points(points: Sequence["SweepPoint"]
                 ) -> list[Optional[float]]:
    """Vectorized convenience: one estimate (or None) per point."""
    return [analytic_latency_us(point) for point in points]
