"""Parallel, cached sweep execution.

Every figure and ablation in this reproduction is a sweep of *independent,
deterministic* simulations: one :func:`~repro.bench.runner.measure_collective`
call per (collective, stack, size) point.  This module turns such a sweep
into an execution plan with three accelerators stacked on top of the
unchanged per-point simulation:

1. **Parallel fan-out** — points are distributed over a
   ``multiprocessing`` worker pool (``--jobs`` on ``python -m repro bench``,
   or the ``REPRO_BENCH_JOBS`` environment knob; ``0`` means "all CPUs").
   Each point is a self-contained simulation seeded identically to the
   sequential path, and results are reassembled in submission order, so
   the output is **bit-identical** to running the points in a loop
   (asserted by ``tests/bench/test_executor.py``).

2. **Content-addressed result cache** — each point's latency is stored
   under a fingerprint of everything the simulation depends on: the point
   coordinates (kind, stack, size, cores, op, seed, rank order), every
   :class:`~repro.hw.config.SCCConfig` field, the NumPy major/minor
   version, and a hash of the ``repro`` package sources.  Re-running a
   figure, ablation or chaos campaign skips already-simulated points;
   editing *any* simulator source file changes the code hash and
   invalidates the whole cache — there is no way to read a stale latency
   out of it short of hand-editing cache files.

3. **Deterministic reassembly** — cache hits and fresh results are merged
   back into the caller's point order, so sweeps see one flat
   ``list[float]`` regardless of which layer produced each value.

The cache lives in ``benchmarks/results/.cache/`` by default (override
with ``REPRO_BENCH_CACHE_DIR``); disable it wholesale with
``REPRO_BENCH_CACHE=0``.  See ``docs/performance.md`` for the full knob
reference and the fingerprint scheme.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pathlib
import time
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from typing import Optional, Sequence, Union

import numpy as np

from repro.hw.config import SCCConfig

#: Bumped manually when the *meaning* of a cache entry changes (schema,
#: units).  Simulator behaviour changes are caught automatically by the
#: source hash, so this rarely moves.
CACHE_SCHEMA = 1


# --------------------------------------------------------------------- #
# Sweep points
# --------------------------------------------------------------------- #
@dataclass
class SweepPoint:
    """One independent simulation of a sweep.

    ``op`` and ``rank_order`` are stored in picklable/serializable form
    (operator name, tuple) so points can cross process boundaries and be
    fingerprinted canonically.
    """

    kind: str
    stack: str
    size: int
    cores: int
    op: str = "sum"
    seed: int = 20120901
    rank_order: Optional[tuple[int, ...]] = None
    config: SCCConfig = field(default_factory=SCCConfig)
    algo: Optional[str] = None

    def describe(self) -> str:
        suffix = f" algo={self.algo}" if self.algo is not None else ""
        return (f"{self.kind}/{self.stack} n={self.size} "
                f"p={self.cores} op={self.op} seed={self.seed}{suffix}")


def _execute_point(point: SweepPoint) -> float:
    """Run one point (worker entry; must stay module-level for pickling)."""
    from repro.bench.runner import measure_collective
    from repro.core.ops import op_by_name

    return measure_collective(
        point.kind, point.stack, point.size, cores=point.cores,
        config=point.config, op=op_by_name(point.op),
        rank_order=point.rank_order, seed=point.seed, algo=point.algo)


# --------------------------------------------------------------------- #
# Fingerprinting
# --------------------------------------------------------------------- #
@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file (hex digest, cached).

    Any edit to the simulator, the stacks, or the bench layer changes this
    value and therefore every point fingerprint — cached results can never
    outlive the code that produced them.
    """
    package_root = pathlib.Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def fingerprint(point: SweepPoint) -> str:
    """Stable content address of one sweep point (sha256 hex digest)."""
    payload = {
        "schema": CACHE_SCHEMA,
        "kind": point.kind,
        "stack": point.stack,
        "size": point.size,
        "cores": point.cores,
        "op": point.op,
        "seed": point.seed,
        "rank_order": (list(point.rank_order)
                       if point.rank_order is not None else None),
        "algo": point.algo,
        "config": asdict(point.config),
        "code": code_fingerprint(),
        "numpy": np.__version__,
    }
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


# --------------------------------------------------------------------- #
# The on-disk result cache
# --------------------------------------------------------------------- #
def default_cache_dir() -> pathlib.Path:
    """Resolve the cache directory: env override, repo tree, or home."""
    env = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "results" / ".cache"
    return pathlib.Path.home() / ".cache" / "repro-scc-bench"


def cache_enabled_by_default() -> bool:
    """``REPRO_BENCH_CACHE`` knob: unset/1/on = enabled, 0/off = disabled."""
    value = os.environ.get("REPRO_BENCH_CACHE", "1").strip().lower()
    return value not in ("0", "off", "false", "no")


class ResultCache:
    """Content-addressed store of simulated latencies.

    One JSON file per fingerprint, sharded by the first two hex digits
    (``.cache/ab/ab12....json``).  Writes go through a per-process
    temporary file and an atomic rename, so concurrent workers racing on
    the same point at worst both write the same bytes.
    """

    def __init__(self, root: Union[str, pathlib.Path, None] = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()

    def path_for(self, fp: str) -> pathlib.Path:
        return self.root / fp[:2] / f"{fp}.json"

    def get(self, fp: str) -> Optional[float]:
        """Cached latency for a fingerprint, or None (any read problem —
        missing file, truncated JSON, schema drift — is a miss)."""
        try:
            with open(self.path_for(fp)) as fh:
                record = json.load(fh)
            if record.get("schema") != CACHE_SCHEMA:
                return None
            return float(record["latency_us"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, fp: str, latency_us: float, point: SweepPoint) -> None:
        path = self.path_for(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": CACHE_SCHEMA,
            "latency_us": latency_us,
            "point": point.describe(),
            "written_at": time.time(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record, sort_keys=True))
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.rglob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #
def default_jobs() -> int:
    """The ``REPRO_BENCH_JOBS`` knob (default 1; ``0``/``auto`` = all CPUs)."""
    value = os.environ.get("REPRO_BENCH_JOBS", "1").strip().lower()
    if value in ("0", "auto"):
        return os.cpu_count() or 1
    try:
        jobs = int(value)
    except ValueError:
        raise ValueError(
            f"malformed REPRO_BENCH_JOBS value {value!r}: expected a "
            f"worker count (or 0/'auto' for all CPUs)") from None
    if jobs < 0:
        raise ValueError(
            f"REPRO_BENCH_JOBS must be >= 0, got {jobs}")
    return jobs or (os.cpu_count() or 1)


@dataclass
class SweepOutcome:
    """Latencies (in point order) plus execution accounting.

    ``hits``/``misses`` count cache activity among the *simulated*
    points.  ``analytic`` is the number of points priced by the analytic
    engine instead of simulated; ``validated`` how many of those were
    additionally cross-checked against the simulator (auto engine), and
    ``max_drift`` the signed relative deviation of the worst validated
    point — negative means the estimate undershot the simulator (0.0
    when nothing was validated).
    """

    latencies: list[float]
    hits: int
    misses: int
    jobs: int
    wall_s: float
    analytic: int = 0
    validated: int = 0
    max_drift: float = 0.0

    @property
    def points(self) -> int:
        return len(self.latencies)


def _resolve_cache(cache: Union[ResultCache, bool, None]) -> Optional[ResultCache]:
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache()
    if cache is False:
        return None
    return ResultCache() if cache_enabled_by_default() else None


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps worker start-up at ~ms and inherits sys.path, which is
    # what makes --jobs pay off for second-scale points; fall back to the
    # platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def parallel_map(fn, items: Sequence, *, jobs: Optional[int] = None) -> list:
    """Order-preserving fork-pool map — the bench fan-out, reusable.

    ``fn`` must be a module-level callable (it crosses process
    boundaries) and every item an independent, deterministic unit of
    work; results come back in submission order, so the output is
    bit-identical to ``[fn(x) for x in items]`` at any job count.
    ``jobs=None`` reads ``REPRO_BENCH_JOBS`` (default 1); ``0`` means
    all CPUs.  Used by :func:`run_sweep` for sweep points and by
    :mod:`repro.ensemble` for GCMC ensemble members.
    """
    items = list(items)
    jobs = default_jobs() if jobs is None else (jobs or (os.cpu_count() or 1))
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1 and len(items) > 1:
        ctx = _pool_context()
        with ctx.Pool(processes=min(jobs, len(items))) as pool:
            return pool.map(fn, items, chunksize=1)
    return [fn(item) for item in items]


def run_sweep(points: Sequence[SweepPoint], *,
              jobs: Optional[int] = None,
              cache: Union[ResultCache, bool, None] = None,
              engine: str = "sim") -> SweepOutcome:
    """Execute a sweep plan and return latencies in point order.

    ``jobs``: worker processes (None → ``REPRO_BENCH_JOBS``, default 1;
    0 → all CPUs).  ``cache``: a :class:`ResultCache`, True/False to
    force the default cache on/off, or None for the ``REPRO_BENCH_CACHE``
    default.  With the default ``engine="sim"`` results are bit-identical
    across all (jobs, cache) combinations: every point is an independent
    deterministic simulation and floats round-trip exactly through the
    cache's JSON encoding.

    ``engine`` selects how points are priced (see
    :mod:`repro.bench.analytic` and ``docs/engines.md``):

    * ``"sim"`` — simulate everything (the historical behavior);
    * ``"analytic"`` — closed-form estimates for every expressible
      point, simulation for the rest;
    * ``"auto"`` — ``analytic`` plus a deterministic sample of the
      estimated points re-run through the simulator
      (``REPRO_BENCH_VALIDATE`` points); any sampled point whose
      estimate drifts beyond ``REPRO_BENCH_DRIFT_TOL`` raises
      :class:`~repro.bench.analytic.EngineDriftError`.

    Analytic estimates are never written to (or read from) the result
    cache — it stores simulated latencies only.  Validation simulations
    are ordinary simulations and use the cache as usual.
    """
    from repro.bench.analytic import (
        ENGINES,
        EngineDriftError,
        analytic_latency_us,
        default_drift_tol,
        default_validate,
        validation_sample,
    )

    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}: expected one of {ENGINES}")
    points = list(points)
    jobs = default_jobs() if jobs is None else (jobs or (os.cpu_count() or 1))
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    store = _resolve_cache(cache)
    started = time.perf_counter()

    latencies: list[Optional[float]] = [None] * len(points)

    # Split the plan: analytically priced points vs points that must be
    # simulated (everything, for the sim engine; the analytic engine's
    # fallback points otherwise).  Auto additionally simulates a sampled
    # subset of the priced points for cross-validation.
    analytic_idx: list[int] = []
    sim_idx: list[int] = []
    validate_idx: list[int] = []
    if engine == "sim":
        sim_idx = list(range(len(points)))
    else:
        for i, point in enumerate(points):
            estimate = analytic_latency_us(point)
            if estimate is None:
                sim_idx.append(i)
            else:
                latencies[i] = estimate
                analytic_idx.append(i)
        if engine == "auto" and analytic_idx:
            validate_idx = [
                analytic_idx[j]
                for j in validation_sample(len(analytic_idx),
                                           default_validate())]

    to_sim = sim_idx + validate_idx  # disjoint by construction
    fingerprints: dict[int, str] = {}
    sim_values: dict[int, float] = {}
    pending: list[int] = []
    if store is not None:
        for i in to_sim:
            fp = fingerprints[i] = fingerprint(points[i])
            hit = store.get(fp)
            if hit is None:
                pending.append(i)
            else:
                sim_values[i] = hit
    else:
        pending = list(to_sim)

    if pending:
        todo = [points[i] for i in pending]
        fresh = parallel_map(_execute_point, todo, jobs=jobs)
        for i, value in zip(pending, fresh):
            sim_values[i] = value
            if store is not None:
                store.put(fingerprints[i], value, points[i])

    for i in sim_idx:
        latencies[i] = sim_values[i]

    # Cross-validation: compare the estimate (which stays the reported
    # value — auto is the analytic engine with a safety net, not a mix
    # of pricing regimes) against the simulated truth.
    max_drift = 0.0
    drifts: list[tuple[str, float, float, float]] = []
    if validate_idx:
        tolerance = default_drift_tol()
        for i in validate_idx:
            sim_us = sim_values[i]
            ana_us = latencies[i]
            drift = (ana_us - sim_us) / sim_us if sim_us else 0.0
            if abs(drift) > abs(max_drift):
                max_drift = drift
            if abs(drift) > tolerance:
                drifts.append((points[i].describe(), ana_us, sim_us, drift))
        if drifts:
            drifts.sort(key=lambda d: -abs(d[3]))
            raise EngineDriftError(drifts, tolerance)

    return SweepOutcome(
        latencies=latencies,  # type: ignore[arg-type]  # all filled above
        hits=len(to_sim) - len(pending),
        misses=len(pending),
        jobs=jobs,
        wall_s=time.perf_counter() - started,
        analytic=len(analytic_idx),
        validated=len(validate_idx),
        max_drift=max_drift,
    )
