"""Benchmark harness: regenerates every table and figure of the paper.

* :mod:`repro.bench.runner` — measure one collective on one stack at one
  vector size (simulated latency), plus sweeps over sizes and stacks.
* :mod:`repro.bench.report` — series/table formatting, speedup statistics.
* :mod:`repro.bench.figures` — the per-figure experiment definitions
  (which collective, which stacks, which sweep) for Fig. 6, Fig. 9a–f and
  Fig. 10.
"""

from repro.bench.runner import (
    CollectiveBench,
    default_sizes,
    measure_collective,
    sweep,
)
from repro.bench.report import (
    Series,
    format_series_table,
    mean_speedup,
    speedup_series,
)

__all__ = [
    "CollectiveBench",
    "Series",
    "default_sizes",
    "format_series_table",
    "mean_speedup",
    "measure_collective",
    "speedup_series",
    "sweep",
]
