"""Series statistics and table rendering for the benchmark reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Series:
    """One latency curve: (sizes, microseconds), labeled."""

    label: str
    sizes: tuple[int, ...]
    values_us: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.values_us):
            raise ValueError("sizes and values must align")

    @classmethod
    def from_lists(cls, label: str, sizes: Sequence[int],
                   values: Sequence[float]) -> "Series":
        return cls(label, tuple(sizes), tuple(values))

    def mean(self) -> float:
        return sum(self.values_us) / len(self.values_us)

    def at(self, size: int) -> float:
        try:
            return self.values_us[self.sizes.index(size)]
        except ValueError:
            raise KeyError(f"size {size} not in series {self.label!r}") from None


def speedup_series(baseline: Series, other: Series) -> list[float]:
    """Pointwise baseline/other latency ratio (>1 = other is faster)."""
    if baseline.sizes != other.sizes:
        raise ValueError("series cover different size grids")
    return [b / o for b, o in zip(baseline.values_us, other.values_us)]


def mean_speedup(baseline: Series, other: Series) -> float:
    ratios = speedup_series(baseline, other)
    return sum(ratios) / len(ratios)


def max_speedup(baseline: Series, other: Series) -> tuple[float, int]:
    """(best ratio, size at which it occurs)."""
    ratios = speedup_series(baseline, other)
    best = max(range(len(ratios)), key=ratios.__getitem__)
    return ratios[best], baseline.sizes[best]


def format_series_table(series: Sequence[Series], *,
                        value_header: str = "latency [us]",
                        float_fmt: str = "{:10.1f}") -> str:
    """Render curves side by side, one row per vector size — the textual
    equivalent of one Fig. 9 panel."""
    if not series:
        return "(no series)"
    sizes = series[0].sizes
    for s in series:
        if s.sizes != sizes:
            raise ValueError("series cover different size grids")
    width = max(10, *(len(s.label) for s in series))
    header = f"{'size':>6}  " + "  ".join(f"{s.label:>{width}}" for s in series)
    rule = "-" * len(header)
    lines = [f"# {value_header}", header, rule]
    for i, n in enumerate(sizes):
        row = f"{n:>6}  " + "  ".join(
            float_fmt.format(s.values_us[i]).rjust(width) for s in series)
        lines.append(row)
    return "\n".join(lines)


def format_speedup_summary(baseline: Series,
                           others: Sequence[Series]) -> str:
    """One line per stack: mean and best speedup against the baseline."""
    lines = [f"speedups vs {baseline.label!r}:"]
    for s in others:
        mean = mean_speedup(baseline, s)
        best, at = max_speedup(baseline, s)
        lines.append(f"  {s.label:<24s} mean {mean:5.2f}x   "
                     f"max {best:5.2f}x @ {at}")
    return "\n".join(lines)
