"""Wall-clock regression harness: how fast is the simulator itself?

Everything else in :mod:`repro.bench` measures *simulated* time; this
module measures *host* time, producing the repo's performance trajectory
(``BENCH_wallclock.json``).  Four metric families:

* **kernel events/sec** — one representative collective simulation, timed;
  the event count comes from
  :attr:`repro.sim.engine.Simulator.events_processed`.  This is the
  per-point cost that the LatencyModel memoization and the sim-kernel
  fast paths optimize.
* **synth candidates/sec** — a representative synthesis search
  (:func:`repro.sched.synth.synthesize` over a small grid) against a
  cold model; the per-candidate pricing cost that the two-level cost
  memoization keeps around a millisecond.
* **race-check events/sec** — the kernel point re-run under the
  happens-before race detector (:mod:`repro.analysis.races`): the
  throughput a ``python -m repro race`` gate point sustains, and the
  overhead multiplier the detector's pure observation costs.
* **sweep wall-clock** — a small Fig.-9-style sweep executed three ways:
  cold sequential (``jobs=1``, no cache), cold parallel (``--jobs`` N, no
  cache), and warm (second run against a freshly populated cache).  All
  three must return bit-identical latencies; the record carries the
  speedup ratios.

Run ``python -m repro bench --smoke`` (or ``python tools/bench_wallclock.py``)
to regenerate the baseline; compare against the committed
``BENCH_wallclock.json`` to catch wall-clock regressions before they land.
Numbers are host-dependent — compare trajectories on one machine, not
across machines (the record embeds the host fingerprint for exactly that
reason).
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from typing import Optional, Sequence

import numpy as np

from repro.bench.executor import ResultCache, SweepPoint, run_sweep
from repro.bench.runner import program_for
from repro.core.ops import SUM
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

#: Schema version of BENCH_wallclock.json.
SCHEMA = 1

#: Default smoke sweep: one collective, two stacks, a handful of sizes
#: around the paper's 552-element application case (includes a padded
#: tail size so the per-point cost is representative).
SMOKE_KIND = "allreduce"
SMOKE_STACKS = ("blocking", "lightweight_balanced")
SMOKE_SIZES = (552, 553, 554)


def kernel_events_metric(kind: str = "allreduce",
                         stack: str = "lightweight_balanced",
                         size: int = 552, cores: int = 48,
                         repeats: int = 3,
                         topology: Optional[str] = None) -> dict:
    """Time one collective simulation; report the best events/sec.

    The best of ``repeats`` runs is reported (standard micro-benchmark
    practice: the minimum is the least noisy estimator of the true cost).
    ``topology`` builds the machine on a registry spec (e.g.
    ``"cluster:2x24"``) instead of the default chip.
    """
    best: Optional[dict] = None
    for _ in range(repeats):
        config = SCCConfig(topology=topology)
        machine = Machine(config)
        comm = make_communicator(machine, stack)
        rng = np.random.default_rng(20120901)
        inputs = [rng.normal(size=size) for _ in range(cores)]
        program = program_for(kind, comm, inputs, SUM)
        started = time.perf_counter()
        result = machine.run_spmd(program, ranks=list(range(cores)))
        seconds = time.perf_counter() - started
        events = machine.sim.events_processed
        sample = {
            "kind": kind, "stack": stack, "size": size, "cores": cores,
            "topology": config.topology_key(),
            "events": events,
            "seconds": round(seconds, 6),
            "events_per_second": round(events / seconds),
            "simulated_us": round(result.elapsed_us, 3),
        }
        if best is None or sample["events_per_second"] > best["events_per_second"]:
            best = sample
    best["repeats"] = repeats
    return best


def synth_search_metric(kinds: Sequence[str] = ("bcast", "scan",
                                                "allreduce"),
                        ps: Sequence[int] = (8, 48),
                        sizes: Sequence[int] = (64, 1024),
                        repeats: int = 3) -> dict:
    """Time the synthesis search; report the best candidates/sec.

    One cold model per repeat (the memoized cost model is the thing
    being measured — a warm model would only time the dict lookups).
    This is the per-candidate price that keeps ``python -m repro tune``
    interactive with the synthesized repertoire in the running.
    """
    from repro.sched.synth import default_model, synthesize

    best: Optional[dict] = None
    for _ in range(repeats):
        model = default_model()
        candidates = 0
        started = time.perf_counter()
        for kind in kinds:
            for p in ps:
                for n in sizes:
                    result = synthesize(kind, p, n, model)
                    candidates += len(result.candidates)
        seconds = time.perf_counter() - started
        sample = {
            "kinds": list(kinds), "ps": list(ps), "sizes": list(sizes),
            "points": len(kinds) * len(ps) * len(sizes),
            "candidates": candidates,
            "seconds": round(seconds, 6),
            "candidates_per_second": round(candidates / seconds),
        }
        if best is None or (sample["candidates_per_second"]
                            > best["candidates_per_second"]):
            best = sample
    best["repeats"] = repeats
    return best


def race_check_metric(kind: str = "allreduce",
                      stack: str = "lightweight_balanced",
                      size: int = 552, cores: int = 48,
                      repeats: int = 3) -> dict:
    """Time one collective under the happens-before race detector.

    Reports detected events/sec plus the wall-clock multiplier against
    the bare run (best-of-``repeats`` on both sides).  Virtual time and
    event counts must be bit-identical between the two runs — the
    detector is pure observation — so the record carries that check too.
    The multiplier is the cost a ``python -m repro race`` gate point
    pays; the test suite bounds it at 5x.
    """
    from repro.analysis.races import RaceDetector

    def run(detected: bool) -> tuple[float, int, int]:
        machine = Machine(SCCConfig())
        if detected:
            RaceDetector().install(machine)
        comm = make_communicator(machine, stack)
        rng = np.random.default_rng(20120901)
        inputs = [rng.normal(size=size) for _ in range(cores)]
        program = program_for(kind, comm, inputs, SUM)
        started = time.perf_counter()
        result = machine.run_spmd(program, ranks=list(range(cores)))
        seconds = time.perf_counter() - started
        return seconds, machine.sim.events_processed, int(result.values[0])

    bare = min(run(False) for _ in range(repeats))
    detected = min(run(True) for _ in range(repeats))
    return {
        "kind": kind, "stack": stack, "size": size, "cores": cores,
        "events": detected[1],
        "bare_seconds": round(bare[0], 6),
        "detected_seconds": round(detected[0], 6),
        "detected_events_per_second": round(detected[1] / detected[0]),
        "overhead_multiplier": round(detected[0] / bare[0], 3),
        "bit_identical": (bare[1], bare[2]) == (detected[1], detected[2]),
        "repeats": repeats,
    }


def sweep_wallclock(kind: str = SMOKE_KIND,
                    stacks: Sequence[str] = SMOKE_STACKS,
                    sizes: Sequence[int] = SMOKE_SIZES,
                    cores: int = 48,
                    jobs: Optional[int] = None) -> dict:
    """Cold-sequential / cold-parallel / warm-cache timings of one sweep.

    The parallel leg always uses at least two workers so the
    multiprocessing path is genuinely exercised (and its bit-identity
    checked) even on single-CPU hosts, where it will honestly record a
    speedup below 1.
    """
    jobs = jobs if jobs is not None else max(2, min(4, os.cpu_count() or 1))

    def plan() -> list[SweepPoint]:
        return [SweepPoint(kind=kind, stack=stack, size=n, cores=cores)
                for stack in stacks for n in sizes]

    cold_seq = run_sweep(plan(), jobs=1, cache=False)
    cold_par = run_sweep(plan(), jobs=jobs, cache=False)
    with tempfile.TemporaryDirectory(prefix="repro-wallclock-") as tmp:
        store = ResultCache(tmp)
        populate = run_sweep(plan(), jobs=1, cache=store)
        warm = run_sweep(plan(), jobs=1, cache=store)
    identical = (cold_seq.latencies == cold_par.latencies
                 == populate.latencies == warm.latencies)
    return {
        "kind": kind,
        "stacks": list(stacks),
        "sizes": list(sizes),
        "cores": cores,
        "points": cold_seq.points,
        "cold_sequential_s": round(cold_seq.wall_s, 4),
        "cold_parallel_s": round(cold_par.wall_s, 4),
        "cold_parallel_jobs": jobs,
        "warm_cache_s": round(warm.wall_s, 4),
        "parallel_speedup": round(cold_seq.wall_s / cold_par.wall_s, 3),
        "warm_fraction_of_cold": round(warm.wall_s / cold_seq.wall_s, 4),
        "bit_identical": identical,
    }


def collect_baseline(*, smoke: bool = True, jobs: Optional[int] = None,
                     cores: Optional[int] = None,
                     sizes: Optional[Sequence[int]] = None) -> dict:
    """Assemble the full BENCH_wallclock.json payload."""
    cores = cores if cores is not None else 48
    sizes = tuple(sizes) if sizes is not None else SMOKE_SIZES
    if not smoke:
        sizes = tuple(range(500, 701, 7))
    kernel = kernel_events_metric(cores=cores, size=sizes[-1],
                                  repeats=3 if smoke else 5)
    cluster = kernel_events_metric(cores=cores, size=sizes[-1],
                                   repeats=3 if smoke else 5,
                                   topology="cluster:2x24")
    synth = synth_search_metric(repeats=3 if smoke else 5)
    race = race_check_metric(cores=cores, size=sizes[-1],
                             repeats=3 if smoke else 5)
    sweep_record = sweep_wallclock(sizes=sizes, cores=cores, jobs=jobs)
    return {
        "schema": SCHEMA,
        "generated_by": "repro.bench.wallclock",
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": smoke,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "numpy": np.__version__,
        },
        "kernel": kernel,
        "cluster": cluster,
        "synth": synth,
        "race": race,
        "sweeps": [sweep_record],
    }


def write_baseline(path: str, data: dict) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")


def format_baseline(data: dict) -> str:
    """Human-readable digest of a baseline record."""
    kernel = data["kernel"]
    lines = [
        f"kernel: {kernel['events_per_second']:,} events/s "
        f"({kernel['events']:,} events in {kernel['seconds']:.3f}s; "
        f"{kernel['kind']}/{kernel['stack']} n={kernel['size']} "
        f"p={kernel['cores']})",
    ]
    cluster = data.get("cluster")
    if cluster:
        lines.append(
            f"cluster: {cluster['events_per_second']:,} events/s "
            f"({cluster['events']:,} events in {cluster['seconds']:.3f}s; "
            f"{cluster['kind']}/{cluster['stack']} n={cluster['size']} "
            f"p={cluster['cores']} on {cluster['topology']})")
    synth = data.get("synth")
    if synth:
        lines.append(
            f"synth : {synth['candidates_per_second']:,} candidates/s "
            f"({synth['candidates']} candidates over {synth['points']} "
            f"points in {synth['seconds']:.3f}s, cold model)")
    race = data.get("race")
    if race:
        lines.append(
            f"race  : {race['detected_events_per_second']:,} events/s "
            f"under the detector ({race['overhead_multiplier']:.2f}x "
            f"bare; bit-identical: {race['bit_identical']})")
    for sw in data["sweeps"]:
        lines.append(
            f"sweep : {sw['kind']} x {len(sw['stacks'])} stacks x "
            f"{len(sw['sizes'])} sizes (p={sw['cores']}, "
            f"{sw['points']} points)")
        lines.append(
            f"        cold sequential {sw['cold_sequential_s']:.2f}s | "
            f"cold --jobs {sw['cold_parallel_jobs']} "
            f"{sw['cold_parallel_s']:.2f}s "
            f"({sw['parallel_speedup']:.2f}x) | "
            f"warm cache {sw['warm_cache_s']:.3f}s "
            f"({100 * sw['warm_fraction_of_cold']:.1f}% of cold)")
        lines.append(
            f"        bit-identical across all paths: "
            f"{sw['bit_identical']}")
    return "\n".join(lines)
