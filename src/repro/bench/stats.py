"""Communication statistics: messages and bytes per core.

The protocol layer records every completed point-to-point message in
``machine.services["p2p.stats"]``.  Beyond profiling, the counters make
algorithm *structure* testable: a ring ReduceScatter must send exactly
``p - 1`` messages per rank, a binomial broadcast exactly ``p - 1``
messages in total, and so on — the test suite locks those invariants in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.machine import Machine


@dataclass
class CommStats:
    """Aggregated point-to-point traffic counters."""

    #: (src_core, dst_core) -> (messages, payload_bytes)
    by_pair: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict)

    def record(self, src: int, dst: int, nbytes: int) -> None:
        msgs, total = self.by_pair.get((src, dst), (0, 0))
        self.by_pair[(src, dst)] = (msgs + 1, total + nbytes)

    # -- queries -----------------------------------------------------------
    @property
    def total_messages(self) -> int:
        return sum(m for m, _b in self.by_pair.values())

    @property
    def total_bytes(self) -> int:
        return sum(b for _m, b in self.by_pair.values())

    def messages_sent_by(self, core: int) -> int:
        return sum(m for (s, _d), (m, _b) in self.by_pair.items()
                   if s == core)

    def messages_received_by(self, core: int) -> int:
        return sum(m for (_s, d), (m, _b) in self.by_pair.items()
                   if d == core)

    def bytes_sent_by(self, core: int) -> int:
        return sum(b for (s, _d), (m, b) in self.by_pair.items()
                   if s == core)

    def partners_of(self, core: int) -> set[int]:
        out = {d for (s, d) in self.by_pair if s == core}
        out |= {s for (s, d) in self.by_pair if d == core}
        return out

    def reset(self) -> None:
        self.by_pair.clear()


def comm_stats(machine: Machine) -> CommStats:
    """The machine's traffic counters (created on first use)."""
    stats = machine.services.get("p2p.stats")
    if stats is None:
        stats = machine.services["p2p.stats"] = CommStats()
    return stats
