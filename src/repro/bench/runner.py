"""Measuring simulated collective latencies.

The paper repeats each operation 10000x on silicon and averages; the
simulator is deterministic, so a single repetition gives the exact
latency.  (A ``repeats`` knob exists anyway: with warm-up repetitions the
measured operation runs in the pipeline steady state, which matters for
the tightly coupled ring algorithms.)

Environment knobs honoured by the benchmark suite:

* ``REPRO_BENCH_SIZES`` — ``start:stop:step`` for the Fig. 9 sweeps
  (default ``500:701:7``; the paper measures every size in 500..700 — use
  ``500:701:1`` to regenerate at full resolution).
* ``REPRO_BENCH_CORES`` — ranks per measurement (default 48, the SCC).
* ``REPRO_BENCH_JOBS`` — worker processes for sweeps (default 1;
  ``0``/``auto`` = all CPUs).  See :mod:`repro.bench.executor`.
* ``REPRO_BENCH_CACHE`` / ``REPRO_BENCH_CACHE_DIR`` — toggle/relocate the
  content-addressed result cache (default on, in
  ``benchmarks/results/.cache/``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.comm import Communicator
from repro.core.ops import SUM, ReduceOp
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.sim.clock import ps_to_us

#: Collective kinds the runner knows how to drive.
KINDS = ("allreduce", "reduce", "reduce_scatter", "allgather", "alltoall",
         "bcast", "barrier")


def parse_sizes_spec(spec: str, *, source: str = "REPRO_BENCH_SIZES") -> list[int]:
    """Parse a ``start:stop:step`` sweep specification.

    Raises a :class:`ValueError` that names ``source`` (the env var or
    option the spec came from) and the expected format, instead of the
    bare int-conversion error a malformed spec used to produce.  Empty
    ranges are rejected too — a sweep of zero points is always a typo.
    """
    parts = spec.split(":")
    try:
        if len(parts) != 3:
            raise ValueError
        start, stop, step = (int(x) for x in parts)
    except ValueError:
        raise ValueError(
            f"malformed {source} spec {spec!r}: expected 'start:stop:step' "
            f"with integer fields, e.g. '500:701:7'") from None
    if step <= 0:
        raise ValueError(
            f"invalid {source} spec {spec!r}: step must be positive, "
            f"got {step}")
    sizes = list(range(start, stop, step))
    if not sizes:
        raise ValueError(
            f"invalid {source} spec {spec!r}: the range is empty "
            f"(start must be below stop)")
    return sizes


def default_sizes() -> list[int]:
    """The Fig. 9 sweep sizes, honoring ``REPRO_BENCH_SIZES``."""
    spec = os.environ.get("REPRO_BENCH_SIZES", "500:701:7")
    return parse_sizes_spec(spec, source="REPRO_BENCH_SIZES")


def default_cores() -> int:
    return int(os.environ.get("REPRO_BENCH_CORES", "48"))


def program_for(kind: str, comm: Communicator, inputs: list[np.ndarray],
                op: ReduceOp, algo: Optional[str] = None):
    """Build the per-rank SPMD program measuring one collective call.

    ``algo`` overrides the communicator's size-based algorithm selection
    (a native algorithm name, or ``sched:<name>`` for the schedule
    engine — see ``docs/schedules.md``).  ``barrier`` takes no algorithm.
    """
    if algo is not None and kind == "barrier":
        raise KeyError("barrier takes no algorithm override")

    def program(env):
        # Align all ranks, then time the operation on rank 0 like the
        # paper does ("the displayed latencies were measured on core 0").
        yield from comm.barrier(env)
        start = env.now
        if kind == "allreduce":
            yield from comm.allreduce(env, inputs[env.rank], op,
                                      algo=algo)
        elif kind == "reduce":
            yield from comm.reduce(env, inputs[env.rank], op, 0,
                                   algo=algo)
        elif kind == "reduce_scatter":
            yield from comm.reduce_scatter(env, inputs[env.rank], op,
                                           algo=algo)
        elif kind == "allgather":
            yield from comm.allgather(env, inputs[env.rank], algo=algo)
        elif kind == "alltoall":
            p = env.size
            matrix = np.tile(inputs[env.rank], (p, 1))
            yield from comm.alltoall(env, matrix, algo=algo)
        elif kind == "bcast":
            buf = (inputs[0].copy() if env.rank == 0
                   else np.empty_like(inputs[0]))
            yield from comm.bcast(env, buf, 0, algo=algo)
        elif kind == "barrier":
            yield from comm.barrier(env)
        else:
            raise KeyError(f"unknown collective kind {kind!r}")
        return env.now - start

    return program


def measure_collective(kind: str, stack: str, size: int, *,
                       cores: Optional[int] = None,
                       config: Optional[SCCConfig] = None,
                       op: ReduceOp = SUM,
                       rank_order: Optional[Sequence[int]] = None,
                       seed: int = 20120901,
                       algo: Optional[str] = None) -> float:
    """Simulated latency (microseconds, rank-0 view) of one collective.

    ``size`` is the per-rank vector length in doubles (the paper's x axis).
    ``rank_order`` maps ranks to physical cores (default: identity, i.e.
    RCCE's natural core numbering); pass
    ``machine.topology.snake_ring_order()`` for the topology-aware mapping
    ablation.  ``algo`` overrides the algorithm selection (see
    :func:`program_for`).
    """
    cores = cores if cores is not None else default_cores()
    config = config if config is not None else SCCConfig()
    # Validate before paying for machine construction, so an invalid rank
    # count fails fast with check_rank_count's message.
    config.check_rank_count(cores)
    machine = Machine(config)
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(seed)
    inputs = [rng.normal(size=size) for _ in range(cores)]
    program = program_for(kind, comm, inputs, op, algo)
    ranks = list(rank_order) if rank_order is not None else list(range(cores))
    result = machine.run_spmd(program, ranks=ranks)
    return ps_to_us(result.values[0])


@dataclass
class CollectiveBench:
    """A configured sweep: one collective, several stacks, many sizes.

    :meth:`run` executes through :mod:`repro.bench.executor`: points fan
    out over a worker pool (``jobs``; default ``REPRO_BENCH_JOBS``) and
    already-simulated points are served from the on-disk result cache
    (``cache``; default ``REPRO_BENCH_CACHE``).  Both layers are
    bit-identical to the plain sequential loop — see
    ``docs/performance.md``.
    """

    kind: str
    stacks: Sequence[str]
    sizes: Sequence[int] = field(default_factory=default_sizes)
    cores: int = field(default_factory=default_cores)
    config_factory: Callable[[], SCCConfig] = SCCConfig
    op: ReduceOp = SUM
    seed: int = 20120901
    algo: Optional[str] = None

    def points(self) -> list["SweepPoint"]:
        """The executor plan: one point per (stack, size), stacks-major."""
        from repro.bench.executor import SweepPoint

        return [
            SweepPoint(kind=self.kind, stack=stack, size=n,
                       cores=self.cores, op=self.op.name, seed=self.seed,
                       config=self.config_factory(), algo=self.algo)
            for stack in self.stacks
            for n in self.sizes
        ]

    def run(self, *, jobs: Optional[int] = None,
            cache=None, engine: str = "sim") -> dict[str, list[float]]:
        """latencies[stack] = [us per size].

        ``engine`` selects the pricing backend per point — ``"sim"``
        (default, simulate everything), ``"analytic"`` (closed-form
        estimates where expressible) or ``"auto"`` (analytic with
        sampled simulator cross-validation).  See ``docs/engines.md``.
        """
        from repro.bench.executor import run_sweep

        outcome = run_sweep(self.points(), jobs=jobs, cache=cache,
                            engine=engine)
        values = iter(outcome.latencies)
        return {stack: [next(values) for _ in self.sizes]
                for stack in self.stacks}


def sweep(kind: str, stacks: Sequence[str],
          sizes: Optional[Sequence[int]] = None,
          cores: Optional[int] = None, *,
          jobs: Optional[int] = None,
          cache=None, algo: Optional[str] = None,
          engine: str = "sim",
          topology: Optional[str] = None) -> dict[str, list[float]]:
    """Convenience wrapper around :class:`CollectiveBench`.

    ``topology`` is a registry spec (``repro.hw.topo``, e.g.
    ``"cluster:2x24"``): every point's machine is built on that shape,
    and ``cores`` defaults to the shape's full core count instead of
    the benchmark default.
    """
    if cores is None:
        if topology is not None:
            from repro.hw.topo import get_topology

            cores = get_topology(topology).num_cores
        else:
            cores = default_cores()
    bench = CollectiveBench(
        kind, stacks,
        sizes=list(sizes) if sizes is not None else default_sizes(),
        cores=cores,
        config_factory=((lambda: SCCConfig(topology=topology))
                        if topology is not None else SCCConfig),
        algo=algo,
    )
    return bench.run(jobs=jobs, cache=cache, engine=engine)
