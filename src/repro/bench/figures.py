"""Per-figure experiment definitions: the paper's evaluation as code.

Each ``fig9*`` function regenerates one panel of Fig. 9 (latency vs vector
size for one collective across the library stacks); :func:`fig6` prints
the block-size table; :func:`fig10` runs the GCMC application across the
stacks.  All return structured results *and* render the paper-style
textual report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.driver import run_gcmc
from repro.bench.report import (
    Series,
    format_series_table,
    format_speedup_summary,
    max_speedup,
    mean_speedup,
)
from repro.bench.runner import default_cores, default_sizes, sweep
from repro.bench.stats import comm_stats
from repro.core.blocks import fig6_table
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.obs.export import (
    run_metrics,
    write_metrics_csv,
    write_metrics_json,
)

#: Fig. 9 panel definitions: (figure id, collective, stacks shown).
_NON_BALANCED = ("rckmpi", "blocking", "ircce", "lightweight")
_BALANCED = _NON_BALANCED + ("lightweight_balanced",)
_ALLREDUCE = _BALANCED + ("mpb",)

FIG9_PANELS: dict[str, tuple[str, tuple[str, ...]]] = {
    "9a": ("allgather", _NON_BALANCED),
    "9b": ("alltoall", _NON_BALANCED),
    "9c": ("reduce_scatter", _BALANCED),
    "9d": ("bcast", _BALANCED),
    "9e": ("reduce", _BALANCED),
    "9f": ("allreduce", _ALLREDUCE),
}


@dataclass
class Fig9Result:
    """One regenerated Fig. 9 panel."""

    figure: str
    kind: str
    series: list[Series]

    @property
    def baseline(self) -> Series:
        return next(s for s in self.series if s.label == "blocking")

    def optimized(self) -> Series:
        """The most-optimized stack shown in this panel."""
        return self.series[-1]

    def mean_speedup_vs_blocking(self, label: str) -> float:
        other = next(s for s in self.series if s.label == label)
        return mean_speedup(self.baseline, other)

    def max_speedup_vs_blocking(self) -> tuple[float, int]:
        return max_speedup(self.baseline, self.optimized())

    def render(self) -> str:
        parts = [
            f"=== Fig. {self.figure}: {self.kind} latency vs vector size "
            f"({default_cores()} cores) ===",
            format_series_table(self.series),
            "",
            format_speedup_summary(self.baseline,
                                   [s for s in self.series
                                    if s.label != "blocking"]),
        ]
        return "\n".join(parts)


def fig9(figure: str, sizes: Optional[Sequence[int]] = None,
         cores: Optional[int] = None) -> Fig9Result:
    """Regenerate one Fig. 9 panel ('9a' .. '9f')."""
    try:
        kind, stacks = FIG9_PANELS[figure]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r}; known: {sorted(FIG9_PANELS)}"
        ) from None
    sizes = list(sizes) if sizes is not None else default_sizes()
    data = sweep(kind, stacks, sizes, cores)
    series = [Series.from_lists(stack, sizes, data[stack])
              for stack in stacks]
    return Fig9Result(figure, kind, series)


def fig6(p: int = 48) -> str:
    """Render the Fig. 6 block-size table."""
    rows = fig6_table(p)
    lines = [
        f"=== Fig. 6: block sizes and imbalance ratios (p = {p}) ===",
        f"{'n':>6} {'std first':>10} {'std general':>12} {'std ratio':>10}"
        f" {'bal max':>8} {'bal min':>8} {'bal ratio':>10}",
    ]
    for r in rows:
        lines.append(
            f"{r['n']:>6} {r['standard_first']:>10} "
            f"{r['standard_general']:>12} {r['standard_ratio']:>10.1f}"
            f" {r['balanced_max']:>8} {r['balanced_min']:>8}"
            f" {r['balanced_ratio']:>10.2f}")
    return "\n".join(lines)


#: The paper's Fig. 10 bars, as (label, mm:ss) for reference.
FIG10_PAPER_RUNTIMES: dict[str, str] = {
    "rckmpi": "55:27",
    "blocking": "25:36",
    "ircce": "23:09",
    "lightweight": "19:38",
    "lightweight_balanced": "18:24",
    "mpb": "17:58",
}

FIG10_STACKS = ("rckmpi", "blocking", "ircce", "lightweight",
                "lightweight_balanced", "mpb")


@dataclass
class Fig10Result:
    """Regenerated application-performance comparison."""

    runtimes_us: dict[str, float]
    wait_fractions: dict[str, float]
    cycles: int
    final_energy: float
    final_particles: int

    def ratio(self, stack: str) -> float:
        base = self.runtimes_us.get("blocking")
        if base is None:
            base = max(self.runtimes_us.values())
        return self.runtimes_us[stack] / base

    def speedup_blocking_to_mpb(self) -> Optional[float]:
        """blocking/mpb runtime ratio; None when either stack wasn't run."""
        if "blocking" not in self.runtimes_us or "mpb" not in self.runtimes_us:
            return None
        return self.runtimes_us["blocking"] / self.runtimes_us["mpb"]

    def render(self) -> str:
        lines = [
            f"=== Fig. 10: GCMC application runtime "
            f"({self.cycles} MC cycles, {default_cores()} cores) ===",
            f"{'stack':<24}{'simulated':>14}{'vs blocking':>12}"
            f"{'paper':>10}{'wait':>7}",
        ]
        paper_base = _mmss_to_s(FIG10_PAPER_RUNTIMES["blocking"])
        for stack in (s for s in FIG10_STACKS if s in self.runtimes_us):
            us = self.runtimes_us[stack]
            paper_ratio = _mmss_to_s(FIG10_PAPER_RUNTIMES[stack]) / paper_base
            lines.append(
                f"{stack:<24}{us / 1000:>12.1f}ms{self.ratio(stack):>12.3f}"
                f"{paper_ratio:>10.3f}{self.wait_fractions[stack]:>7.2f}")
        speedup = self.speedup_blocking_to_mpb()
        if speedup is not None:
            lines.append(f"speedup blocking -> mpb: {speedup:.2f}x"
                         " (paper: >1.40x)")
        return "\n".join(lines)


def default_app_cycles() -> int:
    return int(os.environ.get("REPRO_APP_CYCLES", "6"))


def fig10(cycles: Optional[int] = None,
          stacks: Sequence[str] = FIG10_STACKS,
          app_config: Optional[GCMCConfig] = None,
          profile_dir: Optional[str] = None) -> Fig10Result:
    """Run the GCMC application on every stack; identical physics, only
    the simulated runtimes differ.

    With ``profile_dir`` set, each stack's run also emits a
    machine-readable profile (``fig10_<stack>.metrics.{json,csv}``): the
    per-core busy/wait breakdown, per-mesh-link traffic, and MPB I/O
    counters described in ``docs/observability.md``.
    """
    cycles = cycles if cycles is not None else default_app_cycles()
    cfg = app_config if app_config is not None else GCMCConfig()
    runtimes: dict[str, float] = {}
    waits: dict[str, float] = {}
    energy = None
    particles = None
    for stack in stacks:
        machine = Machine(SCCConfig())
        if profile_dir is not None:
            comm_stats(machine)  # enable per-link traffic attribution
        comm = make_communicator(machine, stack)
        result = run_gcmc(machine, comm, cfg, cycles)
        if profile_dir is not None:
            os.makedirs(profile_dir, exist_ok=True)
            metrics = run_metrics(machine, result, meta={
                "figure": "10", "app": "gcmc",
                "stack": stack, "cycles": cycles,
            })
            base = os.path.join(profile_dir, f"fig10_{stack}")
            write_metrics_json(base + ".metrics.json", metrics)
            write_metrics_csv(base + ".metrics.csv", metrics)
        runtimes[stack] = result.elapsed_us
        waits[stack] = result.wait_fraction()
        if energy is None:
            energy = result.final_energy
            particles = result.final_particles
        elif abs(energy - result.final_energy) > 1e-6:
            raise RuntimeError(
                f"stack {stack} changed the physics: {result.final_energy} "
                f"!= {energy}")
    return Fig10Result(runtimes, waits, cycles, energy, particles)


def _mmss_to_s(text: str) -> float:
    mm, ss = text.split(":")
    return int(mm) * 60 + float(ss)
