"""One-shot waitable events and level-triggered gates.

An :class:`Event` is a one-shot condition a :class:`~repro.sim.process.Process`
can wait on by ``yield``-ing it.  Events carry a value (delivered to the
waiting generator via ``send``) or an exception (delivered via ``throw``).

A :class:`Gate` is a *level*-triggered boolean used to model the SCC's MPB
synchronization flags: it can be set and cleared repeatedly, and hands out
fresh one-shot events to processes that want to wait for a particular level.

Hot-path layout
---------------
A collective simulation allocates one event per protocol step (hundreds of
thousands per sweep point), and the overwhelmingly common shape is *one
callback per event* (the waiting process).  The callback storage is
therefore split into an inline first-callback slot (``_cb1``) plus a list
that is only allocated for the rare second subscriber, and triggering
pushes straight onto the simulator's heap instead of going through
:meth:`Simulator._schedule`.  Dispatch order is exactly registration
order, so virtual time is bit-identical to the straightforward
list-of-callbacks implementation (``tests/bench/test_kernel_identity.py``
pins this).
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.sim.errors import SimulationError, StaleEventError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    Used by the iRCCE layer to implement request cancellation
    (``iRCCE_cancel``): the transfer sub-process waiting for a flag is
    interrupted and unwinds cleanly.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable condition.

    Lifecycle: *pending* → (``succeed`` | ``fail``) → *triggered* →
    (scheduled on the event heap) → *processed* (callbacks ran, waiters
    resumed).
    """

    __slots__ = ("sim", "_cb1", "callbacks", "_value", "_failed",
                 "triggered", "processed", "label")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: First registered callback (inline slot; most events never need
        #: the overflow list below).
        self._cb1: Optional[Callable[["Event"], None]] = None
        #: Overflow callbacks, in registration order (lazily allocated).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = _PENDING
        self._failed = False
        self.triggered = False
        self.processed = False
        #: Optional ``(primitive, target)`` pair naming the operation this
        #: event represents; surfaces in deadlock/watchdog diagnostics.
        self.label: Optional[tuple[str, str]] = None

    # -- inspection ----------------------------------------------------
    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise AttributeError("event value is not yet available")
        return self._value

    @property
    def ok(self) -> bool:
        """True once the event succeeded (as opposed to failed)."""
        return self.triggered and not self._failed

    @property
    def failed(self) -> bool:
        return self.triggered and self._failed

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Mark the event successful; waiters resume ``delay`` ps later."""
        if self.triggered:
            raise StaleEventError(f"{self!r} has already been triggered")
        if delay < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay={delay})")
        self.triggered = True
        self._value = value
        sim = self.sim
        _heappush(sim._heap, (sim._now + delay, sim._seq, self))
        sim._seq += 1
        return self

    def fail(self, exception: BaseException, delay: int = 0) -> "Event":
        """Mark the event failed; the exception is thrown into waiters."""
        if self.triggered:
            raise StaleEventError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._failed = True
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously) — this is what makes waiting on an
        already-completed request a no-op in simulated time.
        """
        if self.processed:
            callback(self)
        elif self._cb1 is None:
            self._cb1 = callback
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        self.processed = True
        callback = self._cb1
        if callback is not None:
            self._cb1 = None
            callback(self)
            callbacks, self.callbacks = self.callbacks, None
            if callbacks:
                for callback in callbacks:
                    callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` picoseconds after creation.

    The constructor writes the event slots directly (no ``super()`` chain)
    and pushes itself onto the heap inline: timeouts are the single most
    allocated event type, one per modeled latency charge.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay.__class__ is not int:
            delay = int(delay)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self._cb1 = None
        self.callbacks = None
        self._value = value
        self._failed = False
        self.triggered = True
        self.processed = False
        self.label = None
        self.delay = delay
        _heappush(sim._heap, (sim._now + delay, sim._seq, self))
        sim._seq += 1


class ConditionValue:
    """Result of an :class:`AnyOf`/:class:`AllOf`: maps events to values."""

    __slots__ = ("events",)

    def __init__(self, events: list[Event]):
        self.events = events

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> list[Any]:
        return [e.value for e in self.events]


class _Condition(Event):
    """Common machinery for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self.label = (type(self).__name__.lower(),
                      f"{len(self.events)} events")
        self._count = 0
        if not self.events:
            self.succeed(ConditionValue([]))
            return
        on_child = self._on_child
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
            event.add_callback(on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.failed:
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            done = [e for e in self.events if e.processed and e.ok]
            self.succeed(ConditionValue(done))

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* child events have fired (any failure propagates)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(_Condition):
    """Fires when *any* child event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class Gate:
    """A level-triggered boolean flag with waiters.

    Models an MPB synchronization flag.  ``set()``/``clear()`` change the
    level; ``wait_true()``/``wait_false()`` return one-shot events that fire
    when the flag reaches the requested level (immediately, if it is already
    there).  An optional ``notify_delay`` models the time between the flag
    being written by one core and the polling core observing the new value.
    """

    __slots__ = ("sim", "name", "_value", "_true_waiters", "_false_waiters",
                 "_label_true", "_label_false")

    def __init__(self, sim: "Simulator", value: bool = False, name: str = ""):
        self.sim = sim
        self.name = name
        self._value = bool(value)
        self._true_waiters: list[tuple[Event, int]] = []
        self._false_waiters: list[tuple[Event, int]] = []
        # Wait events are labeled per gate; building the tuples once here
        # keeps the per-wait cost to two slot writes.
        self._label_true = ("wait_true", name or "<gate>")
        self._label_false = ("wait_false", name or "<gate>")

    @property
    def value(self) -> bool:
        return self._value

    def set(self) -> None:
        if not self._value:
            self._value = True
            waiters = self._true_waiters
            if waiters:
                self._true_waiters = []
                for event, extra in waiters:
                    event.succeed(True, delay=extra)

    def clear(self) -> None:
        if self._value:
            self._value = False
            waiters = self._false_waiters
            if waiters:
                self._false_waiters = []
                for event, extra in waiters:
                    event.succeed(False, delay=extra)

    def toggle(self) -> None:
        if self._value:
            self.clear()
        else:
            self.set()

    def wait_true(self, notify_delay: int = 0) -> Event:
        """Event firing when the flag is (or becomes) set.

        ``notify_delay`` ps are added between the level change and the
        waiter resuming (models the final successful poll's read latency).
        """
        event = Event(self.sim)
        event.label = self._label_true
        if self._value:
            event.succeed(True, delay=notify_delay)
        else:
            self._true_waiters.append((event, notify_delay))
        return event

    def wait_false(self, notify_delay: int = 0) -> Event:
        event = Event(self.sim)
        event.label = self._label_false
        if not self._value:
            event.succeed(False, delay=notify_delay)
        else:
            self._false_waiters.append((event, notify_delay))
        return event

    def wait_level(self, level: bool, notify_delay: int = 0) -> Event:
        return self.wait_true(notify_delay) if level else self.wait_false(notify_delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gate {self.name or id(self):#x} value={self._value}>"
