"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class DeadlockError(SimulationError):
    """The event heap drained while processes were still waiting.

    This is a *first-class* outcome in this project: the paper's Section IV-A
    explains that RCCE's doubly-synchronizing blocking primitives deadlock in
    a cyclic ring exchange unless send/receive calls are ordered in the
    odd-even pattern.  The simulator detects that situation exactly — an
    un-ordered blocking ring raises :class:`DeadlockError`, and the test
    suite asserts it does.
    """

    def __init__(self, waiting: list[str]):
        self.waiting = list(waiting)
        preview = ", ".join(self.waiting[:8])
        if len(self.waiting) > 8:
            preview += f", ... ({len(self.waiting)} total)"
        super().__init__(
            f"simulation deadlocked with {len(self.waiting)} process(es) "
            f"still waiting: {preview}"
        )


class StaleEventError(SimulationError):
    """An event was triggered (succeed/fail) more than once."""
