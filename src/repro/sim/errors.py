"""Exception types raised by the simulation kernel."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class WaitInfo:
    """Diagnostic snapshot of one blocked process.

    ``primitive`` is the blocking operation (``wait_set``, ``wait_clear``,
    ``acquire``, ``wait_process``, ...), ``target`` the object it waits on
    (a flag name such as ``flag[3].rcce.sent.0``, a lock name, a peer
    process name), and ``waited_ps`` how long the process has been parked
    there in simulated picoseconds.
    """

    process: str
    primitive: str
    target: str
    waited_ps: int

    def describe(self) -> str:
        return (f"{self.process}: blocked in {self.primitive}({self.target}) "
                f"for {self.waited_ps} ps")


def _blocked_lines(blocked: list[WaitInfo], limit: int = 8) -> str:
    lines = [f"  {info.describe()}" for info in blocked[:limit]]
    if len(blocked) > limit:
        lines.append(f"  ... and {len(blocked) - limit} more")
    return "\n".join(lines)


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class DeadlockError(SimulationError):
    """The event heap drained while processes were still waiting.

    This is a *first-class* outcome in this project: the paper's Section IV-A
    explains that RCCE's doubly-synchronizing blocking primitives deadlock in
    a cyclic ring exchange unless send/receive calls are ordered in the
    odd-even pattern.  The simulator detects that situation exactly — an
    un-ordered blocking ring raises :class:`DeadlockError`, and the test
    suite asserts it does.

    ``waiting`` holds the blocked process names; ``blocked`` (when the
    engine could collect it) holds one :class:`WaitInfo` per process with
    the blocking primitive and the flag/event it waits on.
    """

    def __init__(self, waiting: list[str],
                 blocked: Optional[list[WaitInfo]] = None):
        self.waiting = list(waiting)
        self.blocked = list(blocked) if blocked else []
        preview = ", ".join(self.waiting[:8])
        if len(self.waiting) > 8:
            preview += f", ... ({len(self.waiting)} total)"
        message = (
            f"simulation deadlocked with {len(self.waiting)} process(es) "
            f"still waiting: {preview}"
        )
        if self.blocked:
            message += "\n" + _blocked_lines(self.blocked)
        super().__init__(message)


class WatchdogTimeout(SimulationError, TimeoutError):
    """The watchdog deadline passed with processes still unfinished.

    Unlike :class:`DeadlockError` (heap drained — nothing can ever happen
    again), a watchdog timeout fires on a run that is still *live* but has
    exceeded its virtual-time budget: livelocks, unbounded retry storms,
    or fault-stalled handshakes.  Carries the same per-process
    :class:`WaitInfo` diagnostics plus the elapsed virtual time.
    """

    def __init__(self, watchdog_ps: int, now_ps: int,
                 blocked: Optional[list[WaitInfo]] = None):
        self.watchdog_ps = watchdog_ps
        self.now_ps = now_ps
        self.blocked = list(blocked) if blocked else []
        message = (
            f"watchdog expired after {now_ps} ps of virtual time "
            f"(budget {watchdog_ps} ps) with {len(self.blocked)} "
            f"process(es) unfinished"
        )
        if self.blocked:
            message += "\n" + _blocked_lines(self.blocked)
        super().__init__(message)


class StaleEventError(SimulationError):
    """An event was triggered (succeed/fail) more than once."""
