"""The discrete-event loop.

Time is an integer count of picoseconds.  The heap holds ``(time, seq,
event)`` entries; ``seq`` is a monotonically increasing insertion counter
that makes simultaneous events process in a deterministic order.

The run loops are deliberately flat: a collective sweep pushes tens of
millions of events through this file, so the hot loops bind the heap and
the heappop primitive locally and dispatch events inline instead of going
through :meth:`Simulator.step`.  :attr:`Simulator.events_processed` counts
dispatched events — ``tools/bench_wallclock.py`` divides it by wall-clock
time to track the kernel's events/sec trajectory.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Generator, Iterable, Optional

from repro.sim.errors import (
    DeadlockError,
    SimulationError,
    WaitInfo,
    WatchdogTimeout,
)
from repro.sim.events import AllOf, AnyOf, Event, Gate, Timeout
from repro.sim.process import Process
from repro.sim.trace import Tracer

_heappush = heapq.heappush
_heappop = heapq.heappop


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(1000)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    1000
    >>> proc.value
    1000
    """

    #: Pause CPython's cyclic garbage collector while a run loop is
    #: executing (re-enabled on exit, even on error).  The kernel allocates
    #: hundreds of thousands of short-lived event/process/generator
    #: structures per collective, some of them cyclic (a waiting process
    #: and its event reference each other), which keeps the generational
    #: collector permanently busy; pausing it during the loop is the
    #: standard discrete-event-simulation discipline and is worth ~10% of
    #: wall-clock.  Set to False on the class or an instance to opt out
    #: (e.g. extremely long single runs on memory-constrained hosts).
    pause_gc: bool = True

    def __init__(self, tracer: Optional[Tracer] = None):
        self._heap: list[tuple[int, int, Event]] = []
        self._now: int = 0
        self._seq: int = 0
        self._processes: dict[int, Process] = {}
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: Total events dispatched by this simulator (perf accounting).
        self.events_processed: int = 0
        #: Attached runtime sanitizer, or None.  Lives on the simulator so
        #: observation layers that only see ``env.sim`` (the obs spans)
        #: can feed it protocol context without a machine reference.
        self.san = None

    # -- time ------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    # -- event construction ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def gate(self, value: bool = False, name: str = "") -> Gate:
        return Gate(self, value, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a simulated process, started at `now`.

        The process removes itself from the registry when its generator
        finishes (see :meth:`Process.__call__`), so no cleanup callback is
        registered here — keeping the event's inline callback slot free
        for the actual waiter.
        """
        proc = Process(self, generator, name=name)
        self._processes[id(proc)] = proc
        return proc

    # -- scheduling (kernel internal) ---------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        _heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    # -- running ----------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event from the heap."""
        when, _seq, event = _heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event heap time went backwards")
        self._now = when
        self.events_processed += 1
        event._process()

    def run(self, until: Optional[int] = None, *, check_deadlock: bool = True) -> int:
        """Run until the heap drains (or simulated time passes ``until``).

        Returns the final simulated time.  If the heap drains while
        registered processes are still alive, a :class:`DeadlockError` is
        raised (unless ``check_deadlock=False``).
        """
        heap = self._heap
        count = 0
        paused_gc = self.pause_gc and gc.isenabled()
        if paused_gc:
            gc.disable()
        try:
            if until is None:
                # Hot path: no horizon check per event.
                while heap:
                    when, _seq, event = _heappop(heap)
                    self._now = when
                    count += 1
                    event._process()
            else:
                while heap:
                    when = heap[0][0]
                    if when > until:
                        self._now = until
                        return self._now
                    when, _seq, event = _heappop(heap)
                    self._now = when
                    count += 1
                    event._process()
        finally:
            self.events_processed += count
            if paused_gc:
                gc.enable()
        if until is not None:
            # The horizon is authoritative: the clock advances to it even
            # if no event was left to carry it there.
            self._now = max(self._now, until)
            return self._now
        if check_deadlock:
            waiting = [p.name or repr(p) for p in self._processes.values()
                       if not p.triggered]
            if waiting:
                raise DeadlockError(waiting, self.blocked_info())
        return self._now

    def blocked_info(self) -> list[WaitInfo]:
        """One :class:`WaitInfo` snapshot per live (blocked) process."""
        infos = []
        for proc in self._processes.values():
            if proc.triggered:
                continue
            event = proc.waiting_on
            if event is None:
                primitive, target = "<unknown>", "<unknown>"
            elif event.label is not None:
                primitive, target = event.label
            elif isinstance(event, Process):
                primitive, target = "wait_process", event.name
            else:
                primitive, target = "wait_event", type(event).__name__
            infos.append(WaitInfo(proc.name or repr(proc), primitive,
                                  target, self._now - proc.wait_since))
        return infos

    def run_until_processes(self, processes: Iterable[Process], *,
                            watchdog_ps: Optional[int] = None) -> int:
        """Run until every process in ``processes`` has completed.

        ``watchdog_ps`` bounds the *virtual* time the run may take (measured
        from the current instant): if the next heap event lies beyond the
        deadline while target processes are unfinished, a
        :class:`WatchdogTimeout` is raised carrying per-process wait
        diagnostics.  This converts silent livelocks/hangs into a rich,
        typed error, complementing the drain-only :class:`DeadlockError`.
        """
        target = AllOf(self, list(processes))
        deadline = self._now + watchdog_ps if watchdog_ps is not None else None
        start = self._now
        heap = self._heap
        count = 0
        paused_gc = self.pause_gc and gc.isenabled()
        if paused_gc:
            gc.disable()
        try:
            if deadline is None:
                # Hot path for the common no-watchdog launch: one heappop
                # and an inline dispatch per event, no per-event deadline
                # check; the dispatch count is accumulated locally and
                # flushed once (an attribute store per event is measurable
                # at this loop's intensity).
                while not target.processed:
                    if not heap:
                        self._raise_drained_deadlock()
                    when, _seq, event = _heappop(heap)
                    self._now = when
                    count += 1
                    event._process()
            else:
                while not target.processed:
                    if not heap:
                        self._raise_drained_deadlock()
                    if heap[0][0] > deadline:
                        raise WatchdogTimeout(watchdog_ps, self._now - start,
                                              self.blocked_info())
                    when, _seq, event = _heappop(heap)
                    self._now = when
                    count += 1
                    event._process()
        finally:
            self.events_processed += count
            if paused_gc:
                gc.enable()
        if target.failed:
            raise target.value
        return self._now

    def _raise_drained_deadlock(self) -> None:
        waiting = [p.name or repr(p) for p in self._processes.values()
                   if not p.triggered]
        raise DeadlockError(waiting or ["<unknown>"], self.blocked_info())

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def live_processes(self) -> list[Process]:
        return [p for p in self._processes.values() if not p.triggered]
