"""Shared-resource primitives built on events.

Only one is needed by this project: :class:`FifoLock`, a strict-FIFO mutex.
It models a core's single execution unit: non-blocking communication
requests are sub-processes of a core, and every slice of *core time* they
consume (copies, reduction arithmetic, software overhead) must hold the
core's lock so that two requests — or a request and the core's main
program — never consume the same cycles twice.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Generator

from repro.sim.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class FifoLock:
    """A mutex granting access in strict request order."""

    __slots__ = ("sim", "name", "_locked", "_queue", "_label")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._locked = False
        self._queue: deque[Event] = deque()
        # Built once: every acquire event carries this label, and locks are
        # acquired once per consume() that misses the try_acquire fast path.
        self._label = ("acquire", name or "<lock>")

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self) -> Event:
        """Event that fires when the caller holds the lock."""
        event = Event(self.sim)
        event.label = self._label
        if not self._locked and not self._queue:
            self._locked = True
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def try_acquire(self) -> bool:
        """Take the lock synchronously if free (hot-path optimization)."""
        if not self._locked and not self._queue:
            self._locked = True
            return True
        return False

    def abandon(self, event: Event) -> None:
        """Back out of an :meth:`acquire` that may or may not have been
        granted yet (used when the waiting process is interrupted).

        If the event is still queued it is removed; if the grant already
        fired, the lock is released on the abandoner's behalf.
        """
        try:
            self._queue.remove(event)
            return
        except ValueError:
            pass
        if event.triggered:
            self.release()

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unlocked FifoLock {self.name!r}")
        if self._queue:
            self._queue.popleft().succeed()
        else:
            self._locked = False

    def holding(self, duration_ps: int) -> Generator:
        """Acquire, hold for ``duration_ps``, release.  Use via ``yield from``."""
        yield self.acquire()
        try:
            if duration_ps > 0:
                yield self.sim.timeout(duration_ps)
        finally:
            self.release()


class Semaphore:
    """A counting semaphore with FIFO wakeup.

    Models bounded channel capacity (the RCKMPI MPB channel's packet
    window): senders ``acquire()`` a slot per packet, the receiver
    ``release()``s it after draining.
    """

    __slots__ = ("sim", "name", "_count", "_queue", "_label")

    def __init__(self, sim: "Simulator", initial: int, name: str = ""):
        if initial < 0:
            raise ValueError(f"negative initial semaphore count: {initial}")
        self.sim = sim
        self.name = name
        self._count = initial
        self._queue: deque[Event] = deque()
        self._label = ("acquire", name or "<semaphore>")

    @property
    def count(self) -> int:
        return self._count

    def acquire(self) -> Event:
        event = Event(self.sim)
        event.label = self._label
        if self._count > 0 and not self._queue:
            self._count -= 1
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def release(self) -> None:
        if self._queue:
            self._queue.popleft().succeed()
        else:
            self._count += 1
