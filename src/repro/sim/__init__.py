"""Deterministic discrete-event simulation kernel.

This package is the substrate everything else runs on.  It provides a
minimal, fast, generator-based process model in the style of SimPy:

* :class:`~repro.sim.engine.Simulator` — the event loop.  Time is kept as an
  integer number of **picoseconds**, which lets the two SCC clock domains
  (533 MHz cores, 800 MHz mesh/DRAM) coexist without floating-point drift.
* :class:`~repro.sim.events.Event` and friends — one-shot waitables.
* :class:`~repro.sim.process.Process` — a simulated thread of control
  wrapped around a Python generator.  Processes ``yield`` events to wait.
* :class:`~repro.sim.events.Gate` — a level-triggered boolean signal used to
  model the SCC's MPB synchronization flags.
* :class:`~repro.sim.clock.Clock` — cycle/time conversion for a frequency
  domain.
* :class:`~repro.sim.trace.Tracer` — optional structured tracing and
  per-process busy/wait accounting (used to reproduce the paper's profiling
  claims, e.g. "cores spend up to 50% of their time in rcce_wait_until").

The kernel is deterministic: ties in the event heap are broken by insertion
sequence number, so two runs of the same program produce identical event
orders and identical simulated timestamps.
"""

from repro.sim.clock import Clock, PS_PER_SECOND, PS_PER_MICROSECOND
from repro.sim.engine import Simulator
from repro.sim.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Gate, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Clock",
    "DeadlockError",
    "Event",
    "Gate",
    "Interrupt",
    "PS_PER_MICROSECOND",
    "PS_PER_SECOND",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
