"""Cycle/time conversion for a frequency domain.

The SCC has two relevant clock domains under the standard preset used in the
paper's evaluation: cores at 533 MHz, mesh network and DRAM at 800 MHz.
Simulated time is integer picoseconds; a :class:`Clock` converts a cycle
count of its domain into picoseconds (and back).
"""

from __future__ import annotations

from dataclasses import dataclass

PS_PER_SECOND = 1_000_000_000_000
PS_PER_MICROSECOND = 1_000_000
PS_PER_NANOSECOND = 1_000


@dataclass(frozen=True)
class Clock:
    """A frequency domain.

    Attributes
    ----------
    freq_hz:
        Clock frequency in Hz.
    ps_per_cycle:
        Integer picoseconds per cycle (rounded; at 533 MHz the rounding
        error is < 0.03%, irrelevant next to the model's calibration slack).
    """

    freq_hz: int

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {self.freq_hz}")

    @property
    def ps_per_cycle(self) -> int:
        return max(1, round(PS_PER_SECOND / self.freq_hz))

    def cycles(self, n: int | float) -> int:
        """Duration of ``n`` cycles in picoseconds."""
        if n < 0:
            raise ValueError(f"negative cycle count: {n}")
        return int(round(n * self.ps_per_cycle))

    def to_cycles(self, ps: int) -> float:
        """Convert a picosecond duration to (fractional) cycles."""
        return ps / self.ps_per_cycle

    def __str__(self) -> str:
        return f"{self.freq_hz / 1e6:g} MHz"


def ps_to_us(ps: int) -> float:
    """Picoseconds → microseconds (the unit of the paper's Fig. 9 axes)."""
    return ps / PS_PER_MICROSECOND


def ps_to_ms(ps: int) -> float:
    return ps / (1000 * PS_PER_MICROSECOND)


def ps_to_s(ps: int) -> float:
    return ps / PS_PER_SECOND


def us_to_ps(us: float) -> int:
    return int(round(us * PS_PER_MICROSECOND))
