"""Structured tracing and busy/wait accounting.

Two facilities:

* :class:`Tracer` — an append-only log of ``TraceRecord`` entries, disabled
  by default (a disabled tracer costs one attribute check per call site).
* :class:`TimeAccount` — per-actor accounting of time spent in named states
  (``busy``, ``wait_flag``, ...).  The paper's profiling observations
  ("cores spend up to 50% of their time in rcce_wait_until", "cores are
  idle two thirds of the time waiting for the first block") are reproduced
  by reading these accounts after a run.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: what happened, where, when."""

    time_ps: int
    actor: str
    tag: str
    detail: Any = None

    def __str__(self) -> str:
        detail = f" {self.detail}" if self.detail is not None else ""
        return f"[{self.time_ps:>14d}ps] {self.actor:<12s} {self.tag}{detail}"


class Tracer:
    """Append-only trace log; cheap when disabled."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self.records: list[TraceRecord] = []

    def emit(self, time_ps: int, actor: str, tag: str, detail: Any = None) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            return
        self.records.append(TraceRecord(time_ps, actor, tag, detail))

    def filter(self, *, actor: Optional[str] = None,
               tag: Optional[str] = None) -> Iterator[TraceRecord]:
        for rec in self.records:
            if actor is not None and rec.actor != actor:
                continue
            if tag is not None and rec.tag != tag:
                continue
            yield rec

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class TimeAccount:
    """Accumulated time per named state for one actor (e.g. one core).

    States are free-form strings; the communication layers use ``compute``,
    ``copy``, ``wait_flag``, ``wait_request`` and ``overhead``.
    """

    #: ``defaultdict(int)`` so hot paths can do ``states[state] += d``
    #: (one C-level hash probe) instead of a ``get``-then-store pair.
    #: Only states that were actually charged appear as keys, exactly as
    #: with a plain dict.
    states: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def add(self, state: str, duration_ps: int) -> None:
        if duration_ps < 0:
            raise ValueError(f"negative duration for state {state!r}")
        self.states[state] = self.states.get(state, 0) + duration_ps

    def total(self) -> int:
        return sum(self.states.values())

    def get(self, state: str) -> int:
        return self.states.get(state, 0)

    def fraction(self, state: str) -> float:
        """Fraction of accounted time spent in ``state`` (0.0 if empty)."""
        total = self.total()
        if total == 0:
            return 0.0
        return self.states.get(state, 0) / total

    def merged(self, other: "TimeAccount") -> "TimeAccount":
        out = TimeAccount(dict(self.states))
        for state, dur in other.states.items():
            out.states[state] = out.states.get(state, 0) + dur
        return out

    def __str__(self) -> str:
        total = self.total() or 1
        parts = ", ".join(
            f"{k}={v / 1e6:.1f}us ({100 * v / total:.0f}%)"
            for k, v in sorted(self.states.items())
        )
        return f"TimeAccount({parts})"
