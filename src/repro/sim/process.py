"""Generator-backed simulated processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.errors import SimulationError
from repro.sim.events import Event, Interrupt, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class Process(Event):
    """A simulated thread of control.

    A process wraps a generator.  Each value the generator yields must be an
    :class:`Event`; the process suspends until that event fires, at which
    point the event's value is sent back into the generator (or its
    exception thrown in).  The process itself is an event that fires with
    the generator's return value, so processes can wait on each other.

    ``interrupt()`` abandons the current wait and throws
    :class:`~repro.sim.events.Interrupt` into the generator.  The process
    registers *itself* as the awaited event's callback (no per-wait closure
    allocation); a wakeup is recognised as current by identity — the firing
    event must still be :attr:`waiting_on` — so a wakeup from an abandoned
    event is stale and ignored even if it fires at the same simulated
    instant as the interrupt.
    """

    __slots__ = ("generator", "name", "_waiting", "waiting_on", "wait_since")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you call the function instead of passing its generator?)"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "") or "process"
        self._waiting = False
        #: The event this process is currently parked on (diagnostics and
        #: stale-wakeup detection).
        self.waiting_on: Event | None = None
        #: Simulated time at which the current wait began.
        self.wait_since: int = sim._now
        # Bootstrap: resume once at the current instant.
        self._wait_on(Event(sim).succeed())

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt completed process {self.name}")
        if not self._waiting:
            raise SimulationError(
                f"cannot interrupt process {self.name} that is not waiting"
            )
        # _wait_on repoints waiting_on at the kick event, which invalidates
        # the abandoned wait: its later firing fails the identity check.
        kick = Event(self.sim)
        kick.fail(Interrupt(cause))
        self._wait_on(kick)

    def _wait_on(self, event: Event) -> None:
        self._waiting = True
        self.waiting_on = event
        self.wait_since = self.sim._now
        if event.processed:
            event.add_callback(self)
        elif event._cb1 is None:
            event._cb1 = self
        elif event.callbacks is None:
            event.callbacks = [self]
        else:
            event.callbacks.append(self)

    def __call__(self, event: Event) -> None:
        """Resume from ``event`` (the process is its own wakeup callback)."""
        if self.triggered or event is not self.waiting_on:
            return  # stale wakeup from an abandoned wait
        self._waiting = False
        try:
            if event._failed:
                next_event = self.generator.throw(event._value)
            else:
                next_event = self.generator.send(event._value)
        except StopIteration as stop:
            self.sim._processes.pop(id(self), None)
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._processes.pop(id(self), None)
            self.fail(exc)
            return
        cls = next_event.__class__
        if cls is not Timeout and cls is not Event and \
                not isinstance(next_event, Event):
            self.sim._processes.pop(id(self), None)
            self.fail(SimulationError(
                f"process {self.name!r} yielded {next_event!r}; "
                "processes may only yield Event instances"
            ))
            return
        self._waiting = True
        self.waiting_on = next_event
        self.wait_since = self.sim._now
        # Inline add_callback (one call per dispatched event saved).
        if next_event.processed:
            next_event.add_callback(self)
        elif next_event._cb1 is None:
            next_event._cb1 = self
        elif next_event.callbacks is None:
            next_event.callbacks = [self]
        else:
            next_event.callbacks.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
