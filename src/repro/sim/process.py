"""Generator-backed simulated processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.errors import SimulationError
from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class Process(Event):
    """A simulated thread of control.

    A process wraps a generator.  Each value the generator yields must be an
    :class:`Event`; the process suspends until that event fires, at which
    point the event's value is sent back into the generator (or its
    exception thrown in).  The process itself is an event that fires with
    the generator's return value, so processes can wait on each other.

    ``interrupt()`` abandons the current wait and throws
    :class:`~repro.sim.events.Interrupt` into the generator.  A wait is
    identified by an epoch counter, so a wakeup from an abandoned event is
    recognised as stale and ignored even if it fires at the same simulated
    instant as the interrupt.
    """

    __slots__ = ("generator", "name", "_epoch", "_waiting",
                 "waiting_on", "wait_since")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you call the function instead of passing its generator?)"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "") or "process"
        self._epoch = 0
        self._waiting = False
        #: The event this process is currently parked on (diagnostics).
        self.waiting_on: Event | None = None
        #: Simulated time at which the current wait began.
        self.wait_since: int = sim.now
        # Bootstrap: resume once at the current instant.
        self._wait_on(Event(sim).succeed())

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt completed process {self.name}")
        if not self._waiting:
            raise SimulationError(
                f"cannot interrupt process {self.name} that is not waiting"
            )
        self._epoch += 1  # invalidate the abandoned wait
        kick = Event(self.sim)
        kick.fail(Interrupt(cause))
        self._wait_on(kick)

    def _wait_on(self, event: Event) -> None:
        self._waiting = True
        self.waiting_on = event
        self.wait_since = self.sim.now
        epoch = self._epoch
        event.add_callback(lambda ev: self._resume(ev, epoch))

    def _resume(self, event: Event, epoch: int) -> None:
        if self.triggered or epoch != self._epoch:
            return  # stale wakeup from an abandoned wait
        self._epoch += 1
        self._waiting = False
        try:
            if event.failed:
                next_event = self.generator.throw(event._value)
            else:
                next_event = self.generator.send(
                    event._value if event._value is not None else None
                )
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded {next_event!r}; "
                "processes may only yield Event instances"
            ))
            return
        self._wait_on(next_event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
