"""The live fault injector: the hook object behind ``machine.faults``.

Design rules:

* **Zero overhead off.**  Every hardware hook site guards with
  ``machine.faults is not None``; an uninstrumented run executes exactly
  the pre-existing code path, so latencies are bit-identical with the
  subsystem absent (asserted by ``tests/faults/test_zero_overhead.py``).
* **Determinism.**  All immediate draws come from a single
  ``numpy.random.default_rng(plan.seed)`` stream; the simulator is
  single-threaded and deterministic, so the draw order — and therefore
  the whole run — is a pure function of ``(plan, program)``.
* **Rank-consistent decisions.**  Decisions that *every* rank must make
  identically (is epoch ``e`` faulty? has the fallback threshold been
  crossed?) cannot come from the shared stream, whose draw order differs
  per rank.  Those use stateless hashing: a fresh
  ``default_rng((seed, salt, epoch))`` per query, so any rank asking
  about the same epoch gets the same answer.
* **Observability.**  Every injected fault and hardening reaction is
  recorded as a :class:`~repro.faults.plan.FaultEvent` *and* emitted
  through the machine's tracer as a ``fault.<kind>`` record — the
  Chrome-trace exporter renders those as instant events, and retries/
  fallbacks are additionally wrapped in ``retry``/``fallback`` spans by
  the protocol layers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, NoReturn, Optional

import numpy as np

from repro.faults.errors import (
    FaultError,
    FlagFaultError,
    MPBFaultError,
    TransferFaultError,
)
from repro.faults.plan import FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.machine import Machine
    from repro.hw.mpb import MPBRegion

#: Hash salt separating the epoch-classification stream from the seed.
_EPOCH_SALT = 0xEC

_ERROR_TYPES: dict[str, type[FaultError]] = {
    "flag_write": FlagFaultError,
    "transfer": TransferFaultError,
    "mpb": MPBFaultError,
}


class FaultInjector:
    """Seed-driven fault source attached to one :class:`Machine`."""

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.machine: Optional["Machine"] = None
        self.counts: dict[str, int] = {}
        self.events: list[FaultEvent] = []
        self._epoch_cache: dict[int, bool] = {}

    # -- lifecycle -------------------------------------------------------
    def install(self, machine: "Machine") -> "FaultInjector":
        """Attach to ``machine`` (also schedules the erratum toggle)."""
        if machine.faults is not None:
            raise RuntimeError("machine already has a fault injector")
        self.machine = machine
        machine.faults = self
        toggle_at = self.plan.erratum_toggle_at_ps
        if toggle_at is not None:
            event = machine.sim.timeout(toggle_at)
            event.add_callback(lambda _e: self._toggle_erratum())
        return self

    def _toggle_erratum(self) -> None:
        cfg = self.machine.config
        cfg.erratum_enabled = not cfg.erratum_enabled
        self.record("erratum_toggle", "faults",
                    {"enabled": cfg.erratum_enabled})

    # -- bookkeeping -----------------------------------------------------
    def record(self, kind: str, actor: str, detail: Any = None) -> None:
        """Count + log one fault event and surface it in the trace."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        now = self.machine.sim.now if self.machine is not None else 0
        self.events.append(FaultEvent(now, kind, actor, detail))
        if self.machine is not None:
            self.machine.sim.tracer.emit(now, actor or "faults",
                                         f"fault.{kind}", detail)

    def raise_fault(self, kind: str, message: str, **context: Any) -> NoReturn:
        """Record the give-up and raise the matching typed error."""
        self.record(f"{kind}_giveup", str(context.get("actor", "faults")),
                    context)
        raise _ERROR_TYPES.get(kind, FaultError)(kind, message, **context)

    def summary(self) -> dict[str, int]:
        return dict(sorted(self.counts.items()))

    def _chance(self, prob: float) -> bool:
        return prob > 0.0 and self.rng.random() < prob

    # -- mesh delivery ---------------------------------------------------
    def mesh_extra_ps(self, accessor: int, owner: int) -> int:
        """Extra latency (jitter + congestion) for one MPB access."""
        plan = self.plan
        lat = self.machine.latency
        extra = 0
        if self._chance(plan.mesh_jitter_prob):
            cycles = int(self.rng.integers(1, plan.mesh_jitter_max_cycles + 1))
            extra += lat.mesh_cycles(cycles)
            self.record("mesh_jitter", f"core{accessor}",
                        {"owner": owner, "mesh_cycles": cycles})
        if self._chance(plan.congestion_prob):
            extra += lat.mesh_cycles(plan.congestion_cycles)
            self.record("mesh_congestion", f"core{accessor}",
                        {"owner": owner,
                         "mesh_cycles": plan.congestion_cycles})
        return extra

    # -- flag faults -----------------------------------------------------
    def flag_write_dropped(self, writer: int, owner: int, name: str) -> bool:
        """Draw: is this flag write lost before reaching the MPB?"""
        if self._chance(self.plan.flag_drop_prob):
            self.record("flag_drop", f"core{writer}",
                        {"owner": owner, "flag": name})
            return True
        return False

    def flag_stale_extra_ps(self, reader: int, owner: int, name: str) -> int:
        """Extra delay before ``reader`` observes a flag level change."""
        if self._chance(self.plan.flag_stale_prob):
            extra = self.machine.latency.core_cycles(
                self.plan.flag_stale_cycles)
            self.record("flag_stale", f"core{reader}",
                        {"owner": owner, "flag": name})
            return extra
        return 0

    # -- payload corruption ----------------------------------------------
    def maybe_corrupt(self, region: "MPBRegion", nbytes: int, *,
                      at: int = 0, actor: str = "",
                      boost: bool = False) -> bool:
        """Possibly flip one byte of a just-written MPB payload.

        ``boost`` raises the rate to near-certainty (used for the MPB
        allreduce's "faulty epoch" classification, so degradation is
        actually exercised).  A nonzero ``plan.payload_corrupt_max``
        caps the number of corruptions per run (boosted ones included).
        """
        budget = self.plan.payload_corrupt_max
        if budget and self.counts.get("payload_corrupt", 0) >= budget:
            return False
        prob = 0.9 if boost else self.plan.payload_corrupt_prob
        if nbytes <= 0 or not self._chance(prob):
            return False
        offset = region.offset + at + int(self.rng.integers(0, nbytes))
        # Silent bit-flip: deliberately bypasses the transfer API so no
        # core is charged.  # repro-lint: allow=mpb-direct-write
        region.mpb.data[offset] ^= np.uint8(0xFF)
        san = self.machine.san if self.machine is not None else None
        if san is not None:
            san.on_corrupt(region.mpb, offset)
        self.record("payload_corrupt", actor,
                    {"mpb": region.owner, "offset": offset})
        return True

    # -- core stalls -----------------------------------------------------
    def stall_ps(self, core_id: int) -> int:
        """Extra stall time charged to one timed core burst."""
        if self._chance(self.plan.core_stall_prob):
            ps = self.machine.latency.core_cycles(self.plan.core_stall_cycles)
            self.record("core_stall", f"core{core_id}",
                        {"core_cycles": self.plan.core_stall_cycles})
            return ps
        return 0

    # -- rank-consistent epoch decisions ---------------------------------
    def mpb_epoch_faulty(self, epoch: int) -> bool:
        """Is MPB-allreduce epoch ``epoch`` faulty?  Same answer on every
        rank: derived from ``(seed, epoch)`` alone, never from the shared
        draw stream."""
        cached = self._epoch_cache.get(epoch)
        if cached is not None:
            return cached
        prob = self.plan.mpb_fault_epoch_prob
        faulty = (prob > 0.0 and np.random.default_rng(
            (self.plan.seed, _EPOCH_SALT, epoch)).random() < prob)
        self._epoch_cache[epoch] = faulty
        return faulty

    def mpb_degraded(self, epoch: int) -> bool:
        """True once the faulty-epoch count among epochs ``0..epoch-1``
        has reached the fallback threshold (rank-consistent)."""
        threshold = self.plan.mpb_fallback_threshold
        faulty = 0
        for e in range(epoch):
            if self.mpb_epoch_faulty(e):
                faulty += 1
                if faulty >= threshold:
                    return True
        return False
