"""Randomized chaos campaigns: collectives × stacks under injected faults.

A *trial* runs one collective on one stack on a fresh machine with a
seeded :class:`~repro.faults.injector.FaultInjector` installed, then
classifies the outcome:

* ``ok`` — completed and every rank's result is bit-identical to the
  NumPy ground truth,
* ``fault`` / ``watchdog`` / ``deadlock`` — terminated with the typed
  error the hardening layers promise (retry budget exhausted, virtual
  time budget exceeded, heap drained),
* ``wrong`` — completed with corrupted results (a hardening bug: the
  soak test asserts this never happens),
* ``error`` — any other exception (also a bug).

A *campaign* sweeps kinds × stacks × seeds and renders the per-stack
survival/correctness table behind ``python -m repro chaos`` and
``tools/run_chaos.py``.

GCMC trials (``python -m repro chaos --app gcmc``) put the whole
application under the same fault regimes and classify with the
statistical envelope instead of bit-exact comparison: a completed run
whose observables fall outside the stored PCA envelope
(:mod:`repro.ensemble`) is ``statistically-wrong`` — the outcome a
silent payload corruption produces when the hardening that should have
caught it (checksums) is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.ops import SUM, ReduceOp
from repro.core.registry import STACKS, make_communicator
from repro.faults.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.sim.clock import ps_to_us, us_to_ps
from repro.sim.errors import DeadlockError, WatchdogTimeout
from repro.sim.trace import Tracer
from repro.util.tables import format_table

#: Collective kinds a campaign can drive (the bench runner's set).
CHAOS_KINDS = ("allreduce", "reduce", "reduce_scatter", "allgather",
               "alltoall", "bcast", "barrier")

#: Named fault regimes.  ``light`` is the fast default behind the
#: ``chaos`` pytest marker; ``heavy`` adds congestion, aggressive rates
#: and a mid-run arbiter-erratum toggle.
CHAOS_PROFILES: dict[str, FaultPlan] = {
    "off": FaultPlan(),
    "light": FaultPlan(
        mesh_jitter_prob=0.05, mesh_jitter_max_cycles=32,
        flag_drop_prob=0.01, flag_stale_prob=0.03, flag_stale_cycles=2000,
        payload_corrupt_prob=0.005, core_stall_prob=0.01,
        core_stall_cycles=2000, mpb_fault_epoch_prob=0.3,
        mpb_fallback_threshold=2),
    "default": FaultPlan(
        mesh_jitter_prob=0.15, mesh_jitter_max_cycles=64,
        congestion_prob=0.02, congestion_cycles=512,
        flag_drop_prob=0.03, flag_stale_prob=0.08, flag_stale_cycles=3000,
        payload_corrupt_prob=0.02, core_stall_prob=0.03,
        core_stall_cycles=5000, mpb_fault_epoch_prob=0.5,
        mpb_fallback_threshold=2),
    "heavy": FaultPlan(
        mesh_jitter_prob=0.3, mesh_jitter_max_cycles=128,
        congestion_prob=0.05, congestion_cycles=1024,
        flag_drop_prob=0.08, flag_stale_prob=0.15, flag_stale_cycles=5000,
        payload_corrupt_prob=0.05, core_stall_prob=0.08,
        core_stall_cycles=8000, mpb_fault_epoch_prob=0.7,
        mpb_fallback_threshold=1, erratum_toggle_at_ps=20_000_000),
}

#: Outcomes that mean "the stack survived the faults as promised".
SURVIVAL_OUTCOMES = ("ok", "fault", "watchdog", "deadlock")

#: Outcome of a GCMC trial that completed but whose observables fall
#: outside the ensemble envelope — the failure mode bit-exact checking
#: cannot express for a chaotic application.
STAT_WRONG = "statistically-wrong"

#: Fixed survival-table column order; outcomes outside this list are
#: appended alphabetically (so GCMC's ``statistically-wrong`` shows up
#: without collective-only campaigns paying an empty column).
_TABLE_OUTCOMES = ("ok", "fault", "watchdog", "deadlock", "wrong", "error")


@dataclass
class TrialResult:
    """Outcome of one chaos trial."""

    kind: str
    stack: str
    seed: int
    outcome: str
    detail: str = ""
    elapsed_us: float = 0.0
    fault_counts: dict[str, int] = field(default_factory=dict)
    records: list = field(default_factory=list)

    @property
    def survived(self) -> bool:
        return self.outcome in SURVIVAL_OUTCOMES


def _trial_program(kind: str, comm, inputs: list[np.ndarray], op: ReduceOp,
                   iters: int = 1):
    """SPMD program returning the collective's *result* (for checking).

    ``iters > 1`` repeats the call (same inputs, last result kept): MPB
    Allreduce epochs accumulate across repeats, which is what lets the
    graceful-degradation fallback trigger inside a single trial.
    """

    def one_call(env):
        if kind == "allreduce":
            result = yield from comm.allreduce(env, inputs[env.rank], op)
        elif kind == "reduce":
            result = yield from comm.reduce(env, inputs[env.rank], op, 0)
        elif kind == "reduce_scatter":
            result = yield from comm.reduce_scatter(env, inputs[env.rank],
                                                    op)
        elif kind == "allgather":
            result = yield from comm.allgather(env, inputs[env.rank])
        elif kind == "alltoall":
            matrix = np.tile(inputs[env.rank], (env.size, 1))
            result = yield from comm.alltoall(env, matrix)
        elif kind == "bcast":
            buf = (inputs[0].copy() if env.rank == 0
                   else np.empty_like(inputs[0]))
            result = yield from comm.bcast(env, buf, 0)
        elif kind == "barrier":
            yield from comm.barrier(env)
            result = None
        else:
            raise KeyError(f"unknown collective kind {kind!r}")
        return result

    def program(env):
        result = None
        for _ in range(iters):
            result = yield from one_call(env)
        return result

    return program


def _check_results(kind: str, values: list, inputs: list[np.ndarray],
                   p: int) -> bool:
    """Bit-exact comparison of every rank's result with NumPy truth."""
    expected = np.sum(inputs, axis=0)
    if kind == "allreduce":
        return all(np.array_equal(v, expected) for v in values)
    if kind == "reduce":
        return (np.array_equal(values[0], expected)
                and all(v is None for v in values[1:]))
    if kind == "reduce_scatter":
        blocks = [v[0] for v in values]
        return np.array_equal(np.concatenate(blocks), expected)
    if kind == "allgather":
        return all(
            all(np.array_equal(v[s], inputs[s]) for s in range(p))
            for v in values)
    if kind == "alltoall":
        return all(
            all(np.array_equal(v[s], inputs[s]) for s in range(p))
            for v in values)
    if kind == "bcast":
        return all(np.array_equal(v, inputs[0]) for v in values)
    if kind == "barrier":
        return all(v is None for v in values)
    raise KeyError(f"unknown collective kind {kind!r}")


def run_trial(kind: str, stack: str, plan: FaultPlan, *,
              size: int = 64, cores: int = 6, iters: int = 1,
              watchdog_us: Optional[float] = 50_000.0,
              op: ReduceOp = SUM,
              config: Optional[SCCConfig] = None,
              trace: bool = False,
              data_seed: int = 20120901) -> TrialResult:
    """One seeded chaos trial on a fresh machine."""
    config = config if config is not None else SCCConfig()
    config.check_rank_count(cores)
    tracer = Tracer(enabled=trace)
    machine = Machine(config, tracer=tracer)
    injector = FaultInjector(plan).install(machine)
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(data_seed)
    # Small integers stored as float64: their sums are exact, so the
    # bit-exact comparison is independent of the reduction order (ring
    # vs recursive halving vs NumPy's pairwise summation).
    inputs = [rng.integers(-999, 1000, size=size).astype(np.float64)
              for _ in range(cores)]
    program = _trial_program(kind, comm, inputs, op, iters)
    watchdog_ps = us_to_ps(watchdog_us) if watchdog_us is not None else None
    try:
        result = machine.run_spmd(program, ranks=list(range(cores)),
                                  watchdog_ps=watchdog_ps)
    except FaultError as exc:
        outcome, detail, elapsed = "fault", str(exc), machine.sim.now
    except WatchdogTimeout as exc:
        outcome, detail, elapsed = "watchdog", str(exc), machine.sim.now
    except DeadlockError as exc:
        outcome, detail, elapsed = "deadlock", str(exc), machine.sim.now
    except Exception as exc:  # noqa: BLE001 - classified, not swallowed
        outcome, detail, elapsed = "error", repr(exc), machine.sim.now
    else:
        elapsed = result.elapsed_ps
        if _check_results(kind, result.values, inputs, cores):
            outcome, detail = "ok", ""
        else:
            outcome, detail = "wrong", "results differ from NumPy truth"
    return TrialResult(
        kind=kind, stack=stack, seed=plan.seed, outcome=outcome,
        detail=detail, elapsed_us=ps_to_us(elapsed),
        fault_counts=injector.summary(),
        records=list(tracer.records) if trace else [])


@dataclass
class CampaignResult:
    """All trials of one chaos campaign."""

    profile: str
    trials: list[TrialResult]

    def outcomes(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for t in self.trials:
            counts[t.outcome] = counts.get(t.outcome, 0) + 1
        return dict(sorted(counts.items()))

    def fault_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for t in self.trials:
            for kind, n in t.fault_counts.items():
                totals[kind] = totals.get(kind, 0) + n
        return dict(sorted(totals.items()))

    def by_stack(self) -> dict[str, list[TrialResult]]:
        groups: dict[str, list[TrialResult]] = {}
        for t in self.trials:
            groups.setdefault(t.stack, []).append(t)
        return groups

    def survival_table(self) -> str:
        """The per-stack survival/correctness table."""
        extra = sorted({t.outcome for t in self.trials}
                       - set(_TABLE_OUTCOMES))
        outcomes = _TABLE_OUTCOMES[:-1] + tuple(extra) + ("error",)
        headers = (["stack", "trials"] + list(outcomes)
                   + ["correct %", "survival %"])
        rows: list[list[Any]] = []
        for stack, trials in sorted(self.by_stack().items()):
            n = len(trials)
            count = (lambda o: sum(1 for t in trials if t.outcome == o))
            ok = count("ok")
            survived = sum(1 for t in trials if t.survived)
            rows.append([stack, n] + [count(o) for o in outcomes]
                        + [100.0 * ok / n, 100.0 * survived / n])
        title = (f"chaos campaign ({self.profile!r} profile, "
                 f"{len(self.trials)} trials)")
        return title + "\n" + format_table(headers, rows)

    def failures(self) -> list[TrialResult]:
        """Trials that violated the hardening contract."""
        return [t for t in self.trials if not t.survived]


def run_campaign(*, profile: str = "light",
                 kinds: Sequence[str] = CHAOS_KINDS,
                 stacks: Sequence[str] = STACKS,
                 seeds: Sequence[int] = (1,),
                 size: int = 64, cores: int = 6, iters: int = 1,
                 watchdog_us: Optional[float] = 50_000.0,
                 config: Optional[SCCConfig] = None) -> CampaignResult:
    """Sweep kinds × stacks × seeds under one fault profile."""
    try:
        base = CHAOS_PROFILES[profile]
    except KeyError:
        raise KeyError(f"unknown chaos profile {profile!r}; known: "
                       f"{sorted(CHAOS_PROFILES)}") from None
    trials = []
    for kind in kinds:
        for stack in stacks:
            for seed in seeds:
                plan = replace(base, seed=seed)
                cfg = (config if config is not None
                       else SCCConfig()).copy()
                trials.append(run_trial(kind, stack, plan, size=size,
                                        cores=cores, iters=iters,
                                        watchdog_us=watchdog_us,
                                        config=cfg))
    return CampaignResult(profile=profile, trials=trials)


# --------------------------------------------------------------------- #
# GCMC application trials (statistical-envelope classification)
# --------------------------------------------------------------------- #

#: Default virtual-time budget for one GCMC chaos trial.  The envelope's
#: committed reference configuration simulates in the low hundreds of
#: milliseconds of virtual time; 2 s leaves room for fault-retry storms
#: while still catching livelock.
GCMC_WATCHDOG_US = 2_000_000.0

#: Default stacks for GCMC campaigns (one per protocol family — a full
#: application run is ~100x the cost of a single-collective trial).
GCMC_CHAOS_STACKS = ("blocking", "lightweight_balanced", "mpb")


def run_gcmc_trial(summary, plan: FaultPlan, *,
                   stack: str = "lightweight_balanced",
                   allreduce_algo: Optional[str] = None,
                   watchdog_us: Optional[float] = GCMC_WATCHDOG_US,
                   threshold: Optional[float] = None,
                   max_pc_fail: Optional[int] = None,
                   config: Optional[SCCConfig] = None) -> TrialResult:
    """One GCMC run under ``plan``, classified against the envelope.

    ``summary`` is an :class:`~repro.ensemble.summary.EnsembleSummary`;
    the trial runs its committed reference configuration (config, cycle
    count, rank count, block size all come from the summary's metadata,
    so the features are commensurable with the envelope).  Outcomes are
    the collective-trial ones plus :data:`STAT_WRONG` for runs that
    completed with observables outside the envelope.
    """
    from repro.apps.gcmc.driver import run_gcmc
    from repro.ensemble.features import extract_features
    from repro.ensemble.summary import (
        DEFAULT_MAX_PC_FAIL,
        DEFAULT_THRESHOLD,
    )

    threshold = DEFAULT_THRESHOLD if threshold is None else threshold
    max_pc_fail = DEFAULT_MAX_PC_FAIL if max_pc_fail is None else max_pc_fail
    cfg = summary.config()
    cycles = int(summary.meta["cycles"])
    cores = int(summary.meta["cores"])
    block = int(summary.meta["block_size"])
    scc = config.copy() if config is not None else SCCConfig()
    scc.check_rank_count(cores)
    machine = Machine(scc)
    injector = FaultInjector(plan).install(machine)
    comm = make_communicator(machine, stack)
    watchdog_ps = us_to_ps(watchdog_us) if watchdog_us is not None else None
    try:
        result = run_gcmc(machine, comm, cfg, cycles,
                          ranks=list(range(cores)),
                          allreduce_algo=allreduce_algo,
                          watchdog_ps=watchdog_ps)
    except FaultError as exc:
        outcome, detail, elapsed = "fault", str(exc), ps_to_us(
            machine.sim.now)
    except WatchdogTimeout as exc:
        outcome, detail, elapsed = "watchdog", str(exc), ps_to_us(
            machine.sim.now)
    except DeadlockError as exc:
        outcome, detail, elapsed = "deadlock", str(exc), ps_to_us(
            machine.sim.now)
    except Exception as exc:  # noqa: BLE001 - classified, not swallowed
        outcome, detail, elapsed = "error", repr(exc), ps_to_us(
            machine.sim.now)
    else:
        elapsed = result.elapsed_us
        try:
            features = extract_features(result, block)
        except ValueError as exc:
            outcome, detail = STAT_WRONG, f"unusable observables: {exc}"
        else:
            check = summary.check(features, threshold=threshold,
                                  max_pc_fail=max_pc_fail,
                                  label=f"gcmc/{stack} seed={plan.seed}")
            if check.passed:
                outcome, detail = "ok", ""
            else:
                outcome = STAT_WRONG
                detail = (f"{check.n_failed} PC(s) outside "
                          f"|z| <= {threshold:g}: "
                          + "; ".join(
                              f"PC{i} z={check.z_scores[i]:+.1f}"
                              for i in check.failed_pcs[:4])
                          + ("".join(f"; {name} moved"
                                     for name in
                                     check.degenerate_failures[:4])))
    return TrialResult(kind="gcmc", stack=stack, seed=plan.seed,
                       outcome=outcome, detail=detail, elapsed_us=elapsed,
                       fault_counts=injector.summary())


def run_gcmc_campaign(summary, *, profile: str = "light",
                      stacks: Sequence[str] = GCMC_CHAOS_STACKS,
                      seeds: Sequence[int] = (1,),
                      watchdog_us: Optional[float] = GCMC_WATCHDOG_US,
                      threshold: Optional[float] = None,
                      max_pc_fail: Optional[int] = None,
                      config: Optional[SCCConfig] = None) -> CampaignResult:
    """Sweep stacks × seeds of full GCMC runs under one fault profile."""
    try:
        base = CHAOS_PROFILES[profile]
    except KeyError:
        raise KeyError(f"unknown chaos profile {profile!r}; known: "
                       f"{sorted(CHAOS_PROFILES)}") from None
    trials = [
        run_gcmc_trial(summary, replace(base, seed=seed), stack=stack,
                       watchdog_us=watchdog_us, threshold=threshold,
                       max_pc_fail=max_pc_fail, config=config)
        for stack in stacks
        for seed in seeds
    ]
    return CampaignResult(profile=profile, trials=trials)
