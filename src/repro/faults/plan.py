"""The fault plan: what can go wrong, how often, and the hardening knobs.

A :class:`FaultPlan` is frozen — a plan plus a seed fully determines a
chaos run, so every campaign trial is reproducible from its ``(plan,
seed)`` pair alone.  Probabilities are per *opportunity* (per flag write,
per transfer, per ``consume`` burst), not per run.

The fault model covers the failure classes the paper's hardware makes
plausible:

* **Mesh delivery** — per-access latency jitter and transient congestion
  bursts (packets delayed, arriving later than the calibrated model).
* **Flag writes** — a remote MPB flag write is lost (never becomes
  visible) or goes *stale* (visible only after an extra delay), the
  doubly-synchronizing protocol's nightmare scenario.
* **Payload corruption** — a byte of a just-written MPB payload flips.
* **Core stalls** — a core loses cycles to a transient stall (an
  interrupt, a thermal event) in the middle of a protocol phase.
* **Arbiter erratum toggle** — the paper's local-MPB-access bug
  (Section IV-D) flips from "fixed" to "buggy" (or back) mid-run at a
  scheduled virtual time, instead of being a static timing constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional


@dataclass(frozen=True)
class FaultPlan:
    """Immutable description of one fault-injection regime."""

    #: Seed of the injector's deterministic random stream.
    seed: int = 0

    # -- mesh delivery ---------------------------------------------------
    #: Probability that one MPB access pays extra mesh latency.
    mesh_jitter_prob: float = 0.0
    #: Upper bound of the jitter, in mesh cycles (drawn uniformly in
    #: ``[1, max]``).
    mesh_jitter_max_cycles: int = 32
    #: Probability of hitting a transient congestion burst.
    congestion_prob: float = 0.0
    #: Fixed extra mesh cycles a congestion burst costs.
    congestion_cycles: int = 512

    # -- flag faults -----------------------------------------------------
    #: Probability that a flag write is lost (never becomes visible).
    flag_drop_prob: float = 0.0
    #: Probability that a flag observation goes stale (extra delay before
    #: the polling core sees the level change).
    flag_stale_prob: float = 0.0
    #: Extra staleness, in core cycles.
    flag_stale_cycles: int = 2000

    # -- payload corruption ----------------------------------------------
    #: Probability that one byte of a just-written MPB payload flips.
    payload_corrupt_prob: float = 0.0
    #: Budget: at most this many payload corruptions per run (``0`` =
    #: unlimited).  A budget of 1 with probability 1 corrupts exactly the
    #: first payload — the deterministic "one silent bit-flip" scenario
    #: the statistical ensemble gate is exercised against.
    payload_corrupt_max: int = 0

    # -- core stalls -----------------------------------------------------
    #: Probability that a timed core burst hits a transient stall.
    core_stall_prob: float = 0.0
    #: Stall length, in core cycles.
    core_stall_cycles: int = 5000

    # -- arbiter erratum toggle ------------------------------------------
    #: Virtual time (ps) at which ``config.erratum_enabled`` is flipped;
    #: ``None`` leaves the configured value alone.
    erratum_toggle_at_ps: Optional[int] = None

    # -- hardening knobs -------------------------------------------------
    #: Bounded retry budget shared by all hardened protocols (flag
    #: write-verify, checksum retransmit, MPB half repair).
    max_retries: int = 8
    #: Enable CRC32-checksummed, sequence-numbered MPB transfers with
    #: retransmit-on-mismatch in the RCCE-family stacks.
    checksums: bool = True

    # -- graceful degradation --------------------------------------------
    #: Probability that one MPB-allreduce *epoch* (one collective call)
    #: is classified faulty; faulty epochs get aggressive payload
    #: corruption on the MPB double buffers.
    mpb_fault_epoch_prob: float = 0.0
    #: After this many faulty epochs, the communicator abandons the
    #: MPB-direct algorithm and falls back to the private-memory ring.
    mpb_fallback_threshold: int = 3

    # Free-form escape hatch for experiments.
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        for name in ("mesh_jitter_prob", "congestion_prob", "flag_drop_prob",
                     "flag_stale_prob", "payload_corrupt_prob",
                     "core_stall_prob", "mpb_fault_epoch_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        for name in ("mesh_jitter_max_cycles", "congestion_cycles",
                     "flag_stale_cycles", "core_stall_cycles"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, "
                                 f"got {getattr(self, name)}")
        if self.payload_corrupt_max < 0:
            raise ValueError(f"payload_corrupt_max must be >= 0, "
                             f"got {self.payload_corrupt_max}")
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, "
                             f"got {self.max_retries}")
        if self.mpb_fallback_threshold < 1:
            raise ValueError(f"mpb_fallback_threshold must be >= 1, "
                             f"got {self.mpb_fallback_threshold}")
        if (self.erratum_toggle_at_ps is not None
                and self.erratum_toggle_at_ps < 0):
            raise ValueError("erratum_toggle_at_ps must be >= 0")

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same regime under a different random seed."""
        return replace(self, seed=seed)

    @property
    def any_faults(self) -> bool:
        """True when at least one fault class has a nonzero rate."""
        return (self.mesh_jitter_prob > 0 or self.congestion_prob > 0
                or self.flag_drop_prob > 0 or self.flag_stale_prob > 0
                or self.payload_corrupt_prob > 0 or self.core_stall_prob > 0
                or self.mpb_fault_epoch_prob > 0
                or self.erratum_toggle_at_ps is not None)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or hardening reaction), as recorded."""

    time_ps: int
    kind: str
    actor: str
    detail: Any = None
