"""Typed errors raised when a hardened protocol exhausts its retry budget.

These are *detected-and-reported* outcomes: the protocol observed an
injected fault, retried up to :attr:`FaultPlan.max_retries` times, and
gave up.  The alternative — a silent hang or silent data corruption —
is exactly what the hardening layers exist to rule out.
"""

from __future__ import annotations

from typing import Any


class FaultError(Exception):
    """Base class: a hardened protocol gave up after bounded retries.

    ``kind`` names the fault site (``flag_write``, ``transfer``, ``mpb``)
    and ``context`` carries the site-specific diagnostics (actor, peer,
    flag name, sequence number, attempt count).
    """

    def __init__(self, kind: str, message: str, **context: Any):
        self.kind = kind
        self.context = context
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
        super().__init__(f"{message} [{detail}]" if detail else message)


class FlagFaultError(FaultError):
    """An MPB flag write kept getting lost past the retry budget."""


class TransferFaultError(FaultError):
    """A checksummed MPB transfer kept failing verification."""


class MPBFaultError(FaultError):
    """The MPB-direct allreduce could not keep a buffer half intact."""
