"""Deterministic, seed-driven fault injection for the simulated SCC.

The subsystem has three parts:

* :class:`~repro.faults.plan.FaultPlan` — an immutable description of
  *what* can go wrong and how often (per-fault probabilities and
  magnitudes) plus the hardening knobs (retry budget, checksums,
  fallback threshold).
* :class:`~repro.faults.injector.FaultInjector` — the live hook object a
  :class:`~repro.hw.machine.Machine` carries as ``machine.faults``.  The
  hardware layers consult it at every fault site; with no injector
  installed every hook is a single ``is None`` check, so fault-free runs
  are bit-identical to a build without this subsystem (the
  zero-overhead guarantee asserted by
  ``tests/faults/test_zero_overhead.py``).
* :mod:`~repro.faults.campaign` — randomized chaos campaigns over all
  collectives × stacks with per-trial correctness verdicts, behind
  ``python -m repro chaos`` and ``tools/run_chaos.py``.

See ``docs/robustness.md`` for the fault model and the hardening
protocols (watchdog, flag write-verify, checksum/retransmit, MPB
fallback).
"""

from repro.faults.errors import (
    FaultError,
    FlagFaultError,
    MPBFaultError,
    TransferFaultError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FlagFaultError",
    "MPBFaultError",
    "TransferFaultError",
]
