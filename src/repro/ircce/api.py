"""iRCCE: the feature-rich non-blocking extension to RCCE.

iRCCE (Clauss et al., RWTH Aachen) adds non-blocking point-to-point
primitives to RCCE.  Its generality is exactly what the paper's
optimization B identifies as overhead on a low-latency network
(Section IV-B):

* arbitrarily many concurrent isend/irecv requests, kept in a linked list
  requiring "dynamic memory operations when issued and after completion",
* reception from arbitrary cores (wildcard) with arbitrary sizes,
* cancellation of pending requests.

We implement all three features; the list-keeping cost appears as the high
``ircce_issue_cycles`` / ``ircce_complete_cycles`` charged per request, and
the request list itself is maintained per core (inspectable in tests).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.hw.machine import CoreEnv, Machine
from repro.ircce.requests import ANY, NonBlockingLayer, Request


class IRCCE(NonBlockingLayer):
    """iRCCE-style non-blocking layer (high software overhead)."""

    name = "ircce"
    supports_wildcard = True
    max_outstanding = None  # unlimited, kept in a per-core request list

    def __init__(self, machine: Machine):
        super().__init__(machine)
        #: Per-core pending-request lists (models iRCCE's linked lists).
        self.request_lists: dict[int, list[Request]] = {}

    def issue_cycles(self) -> int:
        return self.machine.config.ircce_issue_cycles

    def complete_cycles(self) -> int:
        return self.machine.config.ircce_complete_cycles

    def test_cycles(self) -> int:
        return self.machine.config.ircce_test_cycles

    # -- request-list bookkeeping -----------------------------------------
    def isend(self, env: CoreEnv, data: np.ndarray, dst: int) -> Generator:
        req = yield from super().isend(env, data, dst)
        self._enlist(env, req)
        return req

    def irecv(self, env: CoreEnv, out: np.ndarray, src: int) -> Generator:
        req = yield from super().irecv(env, out, src)
        self._enlist(env, req)
        return req

    def wait(self, env: CoreEnv, request: Request) -> Generator:
        result = yield from super().wait(env, request)
        self._delist(env, request)
        return result

    def wait_all(self, env: CoreEnv, requests: list[Request]) -> Generator:
        results = yield from super().wait_all(env, requests)
        for request in requests:
            self._delist(env, request)
        return results

    def cancel(self, env: CoreEnv, request: Request) -> Generator:
        yield from super().cancel(env, request)
        self._delist(env, request)

    def pending(self, core_id: int) -> list[Request]:
        """The core's current request list."""
        return list(self.request_lists.get(core_id, ()))

    def iprobe(self, env: CoreEnv, src: int = ANY) -> Generator:
        """Non-blocking probe for an incoming message (``iRCCE_probe``):
        returns ``(src_rank, nbytes)`` of the first matching pending
        message, or ``None``.  The message stays queued."""
        yield from env.consume(
            env.latency.core_cycles(self.test_cycles()), "overhead")
        pending = self.machine.services.setdefault("p2p.pending", {})
        queue = pending.get(env.core_id, [])
        for src_core, nbytes in queue:
            if src == ANY or env.core_of_rank(src) == src_core:
                return (env.rank_of_core(src_core), nbytes)
        return None

    def _enlist(self, env: CoreEnv, req: Request) -> None:
        self.request_lists.setdefault(env.core_id, []).append(req)

    def _delist(self, env: CoreEnv, req: Request) -> None:
        reqs = self.request_lists.get(env.core_id)
        if reqs and req in reqs:
            reqs.remove(req)


__all__ = ["ANY", "IRCCE"]
