"""iRCCE: non-blocking communication extension to RCCE (Section IV-A/B).

See :mod:`repro.ircce.api` for the layer and :mod:`repro.ircce.requests`
for the request machinery shared with the lightweight layer.
"""

from repro.ircce.api import IRCCE
from repro.ircce.requests import ANY, NonBlockingLayer, Request, RequestError

__all__ = ["ANY", "IRCCE", "NonBlockingLayer", "Request", "RequestError"]
