"""Non-blocking request objects and the shared layer machinery.

A :class:`Request` wraps a transfer sub-process running the same MPB flag
protocol as blocking RCCE.  The sub-process charges its copy time through
the owning core's CPU lock, so transfers progress exactly when the core is
otherwise idle (waiting) — the overlap that optimization A exploits: "cores
can concurrently copy data in and out of the MPBs, effectively using the
time they formerly spent waiting".

:class:`NonBlockingLayer` is the common base for the two concrete layers:

* :class:`repro.ircce.api.IRCCE` — models iRCCE: arbitrarily many pending
  requests kept in a list, wildcard receives, cancellation; the feature
  machinery costs high per-call software overhead (optimization B's
  target).
* :class:`repro.lwnb.api.LWNB` — the paper's lightweight layer: at most
  one outstanding send and one outstanding receive, minimal overhead.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.hw.machine import CoreEnv, Machine
from repro.rcce.api import RCCE, take_announcement
from repro.sim.events import AllOf, Interrupt
from repro.sim.resources import FifoLock

#: Wildcard source rank for :meth:`NonBlockingLayer.irecv` (iRCCE only).
ANY = -1


class RequestError(Exception):
    """Invalid request usage (double cancel, too many outstanding, ...)."""


class Request:
    """Handle for one in-flight non-blocking operation."""

    __slots__ = ("layer", "env", "kind", "peer", "nbytes", "proc",
                 "completed_charged", "cancelled", "result")

    def __init__(self, layer: "NonBlockingLayer", env: CoreEnv, kind: str,
                 peer: int, nbytes: int):
        self.layer = layer
        self.env = env
        self.kind = kind          # "send" | "recv"
        self.peer = peer          # rank, or ANY
        self.nbytes = nbytes
        self.proc = None          # set by the layer after spawning
        self.completed_charged = False
        self.cancelled = False
        self.result = None        # for wildcard recv: (src_rank, nbytes)

    @property
    def done(self) -> bool:
        """True once the transfer sub-process has finished."""
        return self.proc is not None and self.proc.triggered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self.cancelled
                 else "done" if self.done else "pending")
        return (f"<Request {self.kind} rank{self.env.rank}<->{self.peer} "
                f"{self.nbytes}B {state}>")


class NonBlockingLayer:
    """Shared isend/irecv/test/wait/cancel machinery."""

    #: Overridden by subclasses.
    name = "nonblocking"
    supports_wildcard = False
    max_outstanding: Optional[int] = None  # per (core, kind); None = unlimited

    def __init__(self, machine: Machine):
        self.machine = machine
        self._proto = RCCE(machine)  # reuse the Fig.-3 protocol bodies
        self._outstanding: dict[tuple[int, str], int] = {}
        # Issue/complete software overheads in ps, resolved lazily on
        # first use (the cycle counts are per-layer constants; resolving
        # them through the LatencyModel per request is wasted work).
        self._issue_ps: Optional[int] = None
        self._complete_ps: Optional[int] = None
        # A core owns ONE MPB send buffer, so concurrent isends from the
        # same core are processed strictly in issue order (as iRCCE does
        # with its request queue).  Likewise, concurrent ireceives from
        # the same source share one sent/ready flag pair and must drain
        # the channel in issue order.
        self._send_channel: dict[int, "FifoLock"] = {}
        self._recv_channel: dict[tuple[int, int], "FifoLock"] = {}

    def _send_lock(self, core_id: int) -> "FifoLock":
        lock = self._send_channel.get(core_id)
        if lock is None:
            lock = self._send_channel[core_id] = FifoLock(
                self.machine.sim, name=f"sendchan{core_id}")
        return lock

    def _recv_lock(self, dst_core: int, src_core: int) -> "FifoLock":
        key = (dst_core, src_core)
        lock = self._recv_channel.get(key)
        if lock is None:
            lock = self._recv_channel[key] = FifoLock(
                self.machine.sim, name=f"recvchan{key}")
        return lock

    # -- overhead hooks (cycles), overridden per layer -------------------
    def issue_cycles(self) -> int:
        raise NotImplementedError

    def complete_cycles(self) -> int:
        raise NotImplementedError

    def test_cycles(self) -> int:
        raise NotImplementedError

    # -- issuing ------------------------------------------------------------
    def isend(self, env: CoreEnv, data: np.ndarray, dst: int) -> Generator:
        """Start a non-blocking send; returns a :class:`Request`.

        Usage: ``req = yield from layer.isend(env, data, dst)``.
        """
        if dst == env.rank:
            raise RequestError("cannot isend to self")
        self._admit(env, "send")
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        req = Request(self, env, "send", dst, int(raw.size))
        cost = self._issue_ps
        if cost is None:
            cost = self._issue_ps = env.latency.core_cycles(
                self.issue_cycles())
        yield from env.consume(cost, "overhead")
        req.proc = env.sim.process(
            self._send_proc(env, req, raw, dst),
            name=f"isend[{env.rank}->{dst}]")
        return req

    def irecv(self, env: CoreEnv, out: np.ndarray, src: int) -> Generator:
        """Start a non-blocking receive into ``out``; returns a Request.

        ``src`` may be :data:`ANY` on layers with wildcard support; the
        matched sender and actual size are stored in ``request.result``.
        """
        if src == env.rank:
            raise RequestError("cannot irecv from self")
        if src == ANY and not self.supports_wildcard:
            raise RequestError(
                f"{self.name} does not support wildcard receives")
        self._admit(env, "recv")
        raw_out = out.view(np.uint8).reshape(-1)
        req = Request(self, env, "recv", src, int(raw_out.size))
        cost = self._issue_ps
        if cost is None:
            cost = self._issue_ps = env.latency.core_cycles(
                self.issue_cycles())
        yield from env.consume(cost, "overhead")
        req.proc = env.sim.process(
            self._recv_proc(env, req, raw_out, src),
            name=f"irecv[{env.rank}<-{src}]")
        return req

    # -- completion -----------------------------------------------------------
    def wait(self, env: CoreEnv, request: Request) -> Generator:
        """Block until ``request`` finishes; charges completion overhead."""
        proc = request.proc
        if proc is None or not proc.triggered:
            # Inline of Core.wait (waiting does not occupy the CPU).
            sim = env.sim
            t0 = sim._now
            yield proc
            env.core.account.states["wait_request"] += sim._now - t0
        if request.proc.failed and not request.cancelled:
            raise request.proc.value
        if not request.completed_charged:
            request.completed_charged = True
            cost = self._complete_ps
            if cost is None:
                cost = self._complete_ps = env.latency.core_cycles(
                    self.complete_cycles())
            yield from env.consume(cost, "overhead")
        return request.result

    def wait_all(self, env: CoreEnv, requests: list[Request]) -> Generator:
        """Block until every request finishes (one synchronization point —
        the per-round wait of the relaxed ring, Fig. 5)."""
        pending = [r.proc for r in requests if not r.proc.triggered]
        if pending:
            sim = env.sim
            t0 = sim._now
            yield AllOf(sim, pending)
            env.core.account.states["wait_request"] += sim._now - t0
        cost = self._complete_ps
        if cost is None:
            cost = self._complete_ps = env.latency.core_cycles(
                self.complete_cycles())
        for request in requests:
            if request.proc.failed and not request.cancelled:
                raise request.proc.value
            if not request.completed_charged:
                request.completed_charged = True
                yield from env.consume(cost, "overhead")
        return [r.result for r in requests]

    def test(self, env: CoreEnv, request: Request) -> Generator:
        """Non-blocking completion probe (``iRCCE_test``)."""
        yield from env.consume(
            env.latency.core_cycles(self.test_cycles()), "overhead")
        return request.done

    def cancel(self, env: CoreEnv, request: Request) -> Generator:
        """Cancel a pending request (``iRCCE_cancel``).

        Only safe while the request is unmatched (e.g. a speculative
        receive no sender has satisfied); cancelling a matched transfer
        raises.
        """
        if request.done:
            raise RequestError("cannot cancel a completed request")
        if request.cancelled:
            raise RequestError("request already cancelled")
        request.cancelled = True
        request.proc.interrupt("cancelled")
        yield from env.core.wait(request.proc, "wait_request")
        self._retire(env, request.kind)

    # -- sub-process bodies -------------------------------------------------
    def _send_proc(self, env: CoreEnv, req: Request, raw: np.ndarray,
                   dst: int) -> Generator:
        tracer = self.machine.sim.tracer
        lock = self._send_lock(env.core_id)
        grant = lock.acquire()
        try:
            yield grant
        except Interrupt:
            lock.abandon(grant)
            return None
        if tracer.enabled:
            tracer.emit(env.now, f"core{env.core_id}", "send.begin", dst)
        try:
            yield from self._proto._send_body(env, raw, dst)
        except Interrupt:
            return None
        finally:
            lock.release()
        if tracer.enabled:
            tracer.emit(env.now, f"core{env.core_id}", "send.end", dst)
        self._retire(env, "send")
        return None

    def _recv_proc(self, env: CoreEnv, req: Request, raw_out: np.ndarray,
                   src: int) -> Generator:
        tracer = self.machine.sim.tracer
        if tracer.enabled:
            tracer.emit(env.now, f"core{env.core_id}", "recv.begin", src)
        try:
            if src == ANY:
                src = yield from self._match_any(env, req)
            lock = self._recv_lock(env.core_id, env.core_of_rank(src))
            grant = lock.acquire()
            try:
                yield grant
            except Interrupt:
                lock.abandon(grant)
                raise
            try:
                yield from self._proto._recv_body(
                    env, raw_out[:req.nbytes], src)
            finally:
                lock.release()
        except Interrupt:
            return None
        if tracer.enabled:
            tracer.emit(env.now, f"core{env.core_id}", "recv.end", src)
        self._retire(env, "recv")
        return None

    def _match_any(self, env: CoreEnv, req: Request) -> Generator:
        """Wait for any sender's announcement; fixes peer and size."""
        machine = self.machine
        incoming = machine.flag(env.core_id, "p2p.incoming")
        while True:
            found = take_announcement(machine, env.core_id)
            if found is not None:
                src_core, nbytes = found
                # Re-announce: _recv_body pops it again for its own chunk
                # bookkeeping.  (Announcements are per-chunk; wildcard
                # matching fixes only the first chunk's origin.)
                from repro.rcce.api import announce_send
                announce_send(machine, src_core, env.core_id, nbytes)
                src_rank = env.rank_of_core(src_core)
                req.peer = src_rank
                req.nbytes = min(req.nbytes, nbytes)
                req.result = (src_rank, req.nbytes)
                return src_rank
            yield from incoming.wait_set(env.core)

    # -- outstanding accounting ----------------------------------------------
    def _admit(self, env: CoreEnv, kind: str) -> None:
        key = (env.core_id, kind)
        count = self._outstanding.get(key, 0)
        if self.max_outstanding is not None and count >= self.max_outstanding:
            raise RequestError(
                f"{self.name} allows at most {self.max_outstanding} "
                f"outstanding {kind} request(s) per core"
            )
        self._outstanding[key] = count + 1

    def _retire(self, env: CoreEnv, kind: str) -> None:
        key = (env.core_id, kind)
        self._outstanding[key] = max(0, self._outstanding.get(key, 0) - 1)
