"""Topology registry: named, parameterized hardware shapes.

Mirrors the table-driven stack registry in :mod:`repro.core.registry`:
spec strings of the form ``family:body`` resolve through a factory table
to :class:`~repro.hw.topology.Topology` instances, so the hardware model
is data the rest of the stack (config, latency model, cost model,
selection tables, CLI) can key on instead of a hard-wired 6x4 constant.

Built-in families and their spec grammar:

``mesh:CxR[xT]``
    Single-chip mesh of ``C`` columns x ``R`` rows (``T`` cores per tile,
    default 2).  ``mesh:6x4`` is the paper's SCC chip.
``torus:CxR[xT]``
    Same geometry with both mesh axes wrapped; XY routing takes the
    shorter wrap direction.
``cluster:KxI``
    ``K`` chips of ``I`` cores each, chained by board-level links.  Each
    chip is a near-square mesh of ``I // 2`` two-core tiles (columns >=
    rows); ``cluster:2x24`` is two half-populated SCC-style chips,
    ``cluster:2x48`` two full 6x4 chips.

``mesh`` and ``torus`` accept ``+``-separated option suffixes:

``+mc=X.Y;X.Y;...``
    Explicit memory-controller attach routers (replaces the quadrant
    corners), e.g. ``mesh:8x8+mc=0.0;7.7``.
``+w=X.Y-X.Y:W;...``
    Heterogeneous link weights: the link joining adjacent routers
    ``(X, Y)`` costs ``W`` hop units instead of 1, e.g.
    ``mesh:6x4+w=2.0-3.0:4`` makes one column boundary four times slower.

Custom shapes register through :func:`register_topology`; the factory
receives the body text after ``family:`` and returns a ``Topology``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Optional

from repro.hw.topology import LinkWeight, Topology

#: Factory signature: receives the spec body (text after ``family:``).
TopologyFactory = Callable[[str], Topology]

_FACTORIES: Dict[str, TopologyFactory] = {}


def register_topology(family: str, factory: TopologyFactory, *,
                      replace: bool = False) -> None:
    """Register a topology family under a spec-prefix name."""
    if not replace and family in _FACTORIES:
        raise ValueError(f"topology family {family!r} already registered")
    _FACTORIES[family] = factory


def available_topologies() -> list[str]:
    """Sorted names of the registered topology families."""
    return sorted(_FACTORIES)


@lru_cache(maxsize=64)
def get_topology(spec: str) -> Topology:
    """Resolve a ``family:body`` spec string to a cached Topology."""
    family, _, body = spec.partition(":")
    try:
        factory = _FACTORIES[family]
    except KeyError:
        known = ", ".join(available_topologies())
        raise KeyError(f"unknown topology family {family!r}; "
                       f"known: {known}") from None
    return factory(body)


# -- spec parsing -----------------------------------------------------------

def _bad(spec: str, reason: str) -> ValueError:
    return ValueError(f"malformed topology spec {spec!r}: {reason}")


def _parse_dims(text: str, spec: str) -> tuple[int, int, int]:
    """Parse ``CxR`` or ``CxRxT`` into (cols, rows, cores_per_tile)."""
    parts = text.split("x")
    if len(parts) not in (2, 3) or not all(p.isdigit() for p in parts):
        raise _bad(spec, "expected dimensions 'CxR' or 'CxRxT'")
    cols, rows = int(parts[0]), int(parts[1])
    cpt = int(parts[2]) if len(parts) == 3 else 2
    if cols < 1 or rows < 1 or cpt < 1:
        raise _bad(spec, "dimensions must be positive")
    return cols, rows, cpt


def _parse_router(text: str, spec: str) -> tuple[int, int]:
    x, _, y = text.partition(".")
    if not (x.isdigit() and y.isdigit()):
        raise _bad(spec, f"expected router 'X.Y', got {text!r}")
    return (int(x), int(y))


def _parse_mc(text: str, spec: str) -> tuple[tuple[int, int], ...]:
    entries = [e for e in text.split(";") if e]
    if not entries:
        raise _bad(spec, "+mc= needs at least one 'X.Y' router")
    return tuple(_parse_router(e, spec) for e in entries)


def _parse_weights(text: str, spec: str) -> tuple[LinkWeight, ...]:
    links: list[LinkWeight] = []
    for entry in (e for e in text.split(";") if e):
        ends, _, weight = entry.partition(":")
        a_text, sep, b_text = ends.partition("-")
        if not sep or not weight.isdigit():
            raise _bad(spec, f"expected link 'X.Y-X.Y:W', got {entry!r}")
        links.append((_parse_router(a_text, spec),
                      _parse_router(b_text, spec), int(weight)))
    if not links:
        raise _bad(spec, "+w= needs at least one 'X.Y-X.Y:W' link")
    return tuple(links)


def _make_mesh(body: str, spec: str, *, torus: bool) -> Topology:
    dims, *options = body.split("+")
    cols, rows, cpt = _parse_dims(dims, spec)
    mc: Optional[tuple[tuple[int, int], ...]] = None
    weights: Optional[tuple[LinkWeight, ...]] = None
    for option in options:
        key, sep, value = option.partition("=")
        if not sep:
            raise _bad(spec, f"expected option 'key=value', got {option!r}")
        if key == "mc":
            mc = _parse_mc(value, spec)
        elif key == "w":
            weights = _parse_weights(value, spec)
        else:
            raise _bad(spec, f"unknown option {key!r} (know 'mc' and 'w')")
    try:
        return Topology(cols, rows, cpt, torus=torus,
                        mc_placement=mc, link_weights=weights)
    except ValueError as err:
        raise _bad(spec, str(err)) from None


def _mesh_shape_for(tiles: int) -> tuple[int, int]:
    """Near-square factoring of a tile count, columns >= rows."""
    rows = 1
    r = int(tiles ** 0.5)
    while r >= 1:
        if tiles % r == 0:
            rows = r
            break
        r -= 1
    return tiles // rows, rows


def _make_cluster(body: str, spec: str) -> Topology:
    parts = body.split("x")
    if len(parts) != 2 or not all(p.isdigit() for p in parts):
        raise _bad(spec, "expected 'cluster:<chips>x<cores-per-chip>'")
    chips, cores = int(parts[0]), int(parts[1])
    if chips < 1 or cores < 1:
        raise _bad(spec, "chip and core counts must be positive")
    if cores % 2 != 0:
        raise _bad(spec, "cores per chip must be even (two cores per tile)")
    cols, rows = _mesh_shape_for(cores // 2)
    return Topology(cols, rows, 2, chips=chips)


register_topology("mesh", lambda body: _make_mesh(
    body, f"mesh:{body}", torus=False))
register_topology("torus", lambda body: _make_mesh(
    body, f"torus:{body}", torus=True))
register_topology("cluster", lambda body: _make_cluster(
    body, f"cluster:{body}"))
