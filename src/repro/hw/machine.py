"""The assembled machine: cores, MPBs, flags, and the SPMD launcher.

:class:`Machine` wires an :class:`~repro.hw.config.SCCConfig` into a live
simulated chip.  User code (and the communication stacks) interact with it
through :class:`CoreEnv` objects handed to an SPMD program:

    def program(env):
        yield from env.compute(1000)            # 1000 core cycles of work
        ...
    machine = Machine()
    result = machine.run_spmd(program)
    print(result.elapsed_us)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Sequence

from repro.hw.config import SCCConfig
from repro.hw.flags import Flag
from repro.hw.mpb import MPB
from repro.hw.timing import LatencyModel
from repro.hw.topology import Topology
from repro.sim.clock import ps_to_us
from repro.sim.engine import Simulator
from repro.sim.events import Event, Timeout
from repro.sim.resources import FifoLock
from repro.sim.trace import TimeAccount, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sanitizer import Sanitizer
    from repro.faults.injector import FaultInjector


class Core:
    """One P54C core: an execution context with busy/wait accounting.

    All core-time consumption funnels through :meth:`consume`, which holds
    the core's CPU lock — so the core's main program and any non-blocking
    communication sub-processes can never consume the same cycles twice.
    """

    __slots__ = ("machine", "core_id", "cpu", "account")

    def __init__(self, machine: "Machine", core_id: int):
        self.machine = machine
        self.core_id = core_id
        self.cpu = FifoLock(machine.sim, name=f"cpu{core_id}")
        self.account = TimeAccount()

    def consume(self, duration_ps: int, state: str = "compute") -> Generator:
        """Occupy the core for ``duration_ps``, accounted under ``state``.

        The fault-free path is the kernel's hottest generator (one call
        per modeled latency charge), so it inlines the lock fast path, the
        timeout push and the account update; the fault-aware path keeps
        the readable layered form.
        """
        machine = self.machine
        if machine.faults is None:
            cpu = self.cpu
            if cpu._locked or cpu._queue:
                yield cpu.acquire()
            else:
                cpu._locked = True
            try:
                if duration_ps > 0:
                    yield Timeout(machine.sim, duration_ps)
                self.account.states[state] += duration_ps
            finally:
                queue = cpu._queue
                if queue:
                    queue.popleft().succeed()
                else:
                    cpu._locked = False
            return
        faults = machine.faults
        stall = faults.stall_ps(self.core_id) if duration_ps > 0 else 0
        if not self.cpu.try_acquire():
            yield self.cpu.acquire()
        try:
            if stall > 0:
                yield machine.sim.timeout(stall)
                self.account.add("stall", stall)
            if duration_ps > 0:
                yield machine.sim.timeout(duration_ps)
            self.account.add(state, duration_ps)
        finally:
            self.cpu.release()

    def wait(self, event: Event, state: str = "wait") -> Generator:
        """Wait on ``event`` without occupying the core; time is accounted
        under ``state``.  Returns the event's value."""
        sim = self.machine.sim
        t0 = sim._now
        value = yield event
        self.account.states[state] += sim._now - t0
        return value

    def consume_at_mpb(self, owner_core: int, duration_ps: int,
                       state: str = "compute") -> Generator:
        """Like :meth:`consume`, but the time is an access burst to
        ``owner_core``'s MPB: when port contention is modeled, the burst
        additionally holds that MPB's port lock (stall time while another
        core owns the port is accounted as ``wait_port``).

        Lock order is always CPU first, then port; port holders only wait
        on timeouts, so the ordering is deadlock-free.
        """
        machine = self.machine
        ports = machine.mpb_ports
        if ports is None:
            yield from self.consume(duration_ps, state)
            return
        if not self.cpu.try_acquire():
            yield self.cpu.acquire()
        try:
            port = ports[owner_core]
            t0 = machine.sim._now
            if not port.try_acquire():
                yield port.acquire()
            stall = machine.sim._now - t0
            if stall:
                self.account.add("wait_port", stall)
            try:
                if duration_ps > 0:
                    yield Timeout(machine.sim, duration_ps)
                self.account.add(state, duration_ps)
            finally:
                port.release()
        finally:
            self.cpu.release()

    def compute_cycles(self, cycles: int | float, state: str = "compute") -> Generator:
        return self.consume(self.machine.latency.core_cycles(cycles), state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.core_id}>"


@dataclass
class SPMDResult:
    """Outcome of one :meth:`Machine.run_spmd` launch."""

    values: list[Any]
    elapsed_ps: int
    accounts: list[TimeAccount]

    @property
    def elapsed_us(self) -> float:
        return ps_to_us(self.elapsed_ps)

    def account_fraction(self, state: str) -> float:
        """Fraction of total accounted time (all cores) spent in ``state``."""
        total = sum(a.total() for a in self.accounts)
        if total == 0:
            return 0.0
        return sum(a.get(state) for a in self.accounts) / total


class Machine:
    """A simulated SCC chip."""

    def __init__(self, config: Optional[SCCConfig] = None,
                 tracer: Optional[Tracer] = None):
        self.config = config if config is not None else SCCConfig()
        self.sim = Simulator(tracer)
        # Topology is immutable, so machines with the same geometry share
        # one instance (a sweep builds thousands of Machines; rebuilding
        # the mesh helpers per point is pure waste).  The registry cache
        # behind resolved_topology() provides the sharing.
        self.topology: Topology = self.config.resolved_topology()
        self.latency = LatencyModel(self.config, self.topology)
        self.cores = [Core(self, i) for i in range(self.config.num_cores)]
        self.mpbs = [
            MPB(i, self.config.mpb_bytes_per_core, self.config.l1_line_bytes,
                self.config.mpb_flag_bytes)
            for i in range(self.config.num_cores)
        ]
        self._flags: dict[tuple[int, str], Flag] = {}
        #: Scratch space for communication layers to stash per-machine
        #: state (e.g. the iRCCE wildcard-receive announcement queues).
        self.services: dict[str, Any] = {}
        #: Per-MPB access-port locks (only when contention is modeled).
        self.mpb_ports: Optional[list[FifoLock]] = (
            [FifoLock(self.sim, name=f"mpbport{i}")
             for i in range(self.config.num_cores)]
            if self.config.model_mpb_contention else None)
        #: Fault injector, or None.  Every fault hook site guards on this
        #: being non-None, so fault-free runs pay one attribute check and
        #: execute the exact pre-existing code path (zero overhead).
        self.faults: Optional["FaultInjector"] = None
        #: MPB/flag sanitizer, or None (same zero-overhead discipline;
        #: see :mod:`repro.analysis.sanitizer`).
        self.san: Optional["Sanitizer"] = None

    @property
    def num_cores(self) -> int:
        return self.config.num_cores

    def flag(self, owner: int, name: str) -> Flag:
        """The flag ``name`` in ``owner``'s MPB (created on first use)."""
        flag = self._flags.get((owner, name))
        if flag is None:
            if not 0 <= owner < self.num_cores:
                raise ValueError(f"flag owner {owner} out of range")
            flag = self._flags[(owner, name)] = Flag(self, owner, name)
        return flag

    def reset_mpbs(self) -> None:
        for mpb in self.mpbs:
            mpb.clear()

    # ------------------------------------------------------------------ #
    def run_spmd(self, program: Callable[..., Generator], *args: Any,
                 ranks: Optional[Sequence[int]] = None,
                 watchdog_ps: Optional[int] = None,
                 **kwargs: Any) -> SPMDResult:
        """Run ``program(env, *args, **kwargs)`` on every core.

        ``ranks`` restricts the launch to a subset of cores (they become
        ranks 0..len-1 of the job).  ``watchdog_ps`` bounds the virtual
        time of the launch: exceeding it raises a
        :class:`~repro.sim.errors.WatchdogTimeout` with per-process wait
        diagnostics instead of letting a faulty run stall silently.
        Returns per-rank return values, the simulated makespan, and
        per-rank time accounts.
        """
        ranks = list(ranks) if ranks is not None else list(range(self.num_cores))
        size = len(ranks)
        if size == 0:
            raise ValueError("run_spmd needs at least one rank")
        start = self.sim.now
        envs = [CoreEnv(self, rank, size, ranks) for rank in range(size)]
        procs = [
            self.sim.process(program(env, *args, **kwargs),
                             name=f"rank{env.rank}")
            for env in envs
        ]
        self.sim.run_until_processes(procs, watchdog_ps=watchdog_ps)
        return SPMDResult(
            values=[p.value for p in procs],
            elapsed_ps=self.sim.now - start,
            accounts=[self.cores[cid].account for cid in ranks],
        )


class CoreEnv:
    """Per-rank execution environment handed to SPMD programs.

    ``sim``, ``config``, ``latency``, ``core_id`` are plain attributes
    (they can never change over the env's lifetime) and the time helpers
    return the underlying :class:`Core` generators directly — both shave
    an attribute hop or a generator frame off paths the protocol layers
    hit once or more per simulated event.
    """

    __slots__ = ("machine", "rank", "size", "_ranks", "core", "data",
                 "sim", "config", "latency", "core_id")

    def __init__(self, machine: Machine, rank: int, size: int,
                 ranks: Sequence[int]):
        self.machine = machine
        self.rank = rank
        self.size = size
        self._ranks = list(ranks)
        self.core = machine.cores[self._ranks[rank]]
        self.data: dict[str, Any] = {}
        self.sim: Simulator = machine.sim
        self.config: SCCConfig = machine.config
        self.latency: LatencyModel = machine.latency
        self.core_id: int = self.core.core_id

    # -- identity ----------------------------------------------------------
    def core_of_rank(self, rank: int) -> int:
        return self._ranks[rank]

    def rank_of_core(self, core_id: int) -> int:
        return self._ranks.index(core_id)

    @property
    def now(self) -> int:
        return self.sim._now

    # -- time --------------------------------------------------------------
    def compute(self, cycles: int | float) -> Generator:
        """Model ``cycles`` core cycles of application computation."""
        return self.core.compute_cycles(cycles, "compute")

    def consume(self, duration_ps: int, state: str) -> Generator:
        return self.core.consume(duration_ps, state)

    def sleep(self, duration_ps: int) -> Generator:
        """Idle (not occupying the CPU) for a fixed duration."""
        return self.core.wait(Timeout(self.sim, duration_ps), "idle")

    # -- hardware handles -----------------------------------------------------
    def my_mpb(self) -> MPB:
        return self.machine.mpbs[self.core_id]

    def mpb_of_rank(self, rank: int) -> MPB:
        return self.machine.mpbs[self.core_of_rank(rank)]

    def flag(self, owner_rank: int, name: str) -> Flag:
        return self.machine.flag(self.core_of_rank(owner_rank), name)
