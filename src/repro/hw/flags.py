"""MPB synchronization flags with modeled access costs.

A :class:`Flag` pairs a kernel :class:`~repro.sim.events.Gate` with the MPB
that physically holds it, so setting/clearing from a given core costs that
core the corresponding MPB write latency, and a waiting core observes the
change only after its final poll's read latency (RCCE's
``rcce_wait_until``).

The generator methods charge time to the acting core's
:class:`~repro.sim.trace.TimeAccount` under the states ``overhead`` (flag
writes) and ``wait_flag`` (waits), which is what lets the test suite
reproduce the paper's profiling claim that cores spend up to ~50% of their
time in ``rcce_wait_until``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.events import Gate, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.machine import Core, Machine


class Flag:
    """One synchronization flag living in ``owner``'s MPB."""

    __slots__ = ("machine", "owner", "name", "gate",
                 "_label_set", "_label_clear")

    def __init__(self, machine: "Machine", owner: int, name: str):
        self.machine = machine
        self.owner = owner
        self.name = name
        self.gate = Gate(machine.sim, name=f"flag[{owner}].{name}")
        # Wait-event labels, built once per flag rather than per wait.
        self._label_set = ("wait_set", self.gate.name)
        self._label_clear = ("wait_clear", self.gate.name)

    @property
    def value(self) -> bool:
        return self.gate.value

    # -- timed operations (generators; use via ``yield from``) ------------
    def set_by(self, core: "Core") -> Generator:
        """``core`` writes 1 to the flag (MPB write latency applies)."""
        return self._write_by(core, True)

    def clear_by(self, core: "Core") -> Generator:
        """``core`` writes 0 to the flag."""
        return self._write_by(core, False)

    def _write_by(self, core: "Core", level: bool) -> Generator:
        machine = self.machine
        cost = machine.latency.flag_write(core.core_id, self.owner)
        faults = machine.faults
        if faults is None:
            # Inline of Core.consume's fault-free fast path (flag writes
            # are the single most frequent charge in the MPB protocols;
            # skipping the extra generator frame is measurable).  Keep in
            # sync with :meth:`repro.hw.machine.Core.consume`.
            cpu = core.cpu
            if cpu._locked or cpu._queue:
                yield cpu.acquire()
            else:
                cpu._locked = True
            try:
                if cost > 0:
                    yield Timeout(machine.sim, cost)
                core.account.states["overhead"] += cost
            finally:
                queue = cpu._queue
                if queue:
                    queue.popleft().succeed()
                else:
                    cpu._locked = False
            if machine.san is not None:
                machine.san.on_flag_write(self, level, core.core_id)
            self._apply(level)
            return
        # Fault-aware path: mesh jitter on the write, and a write-verify
        # loop against lost flag writes — the writer reads the flag back
        # (one MPB access) and rewrites until the level sticks, bounded
        # by the plan's retry budget.
        jitter = faults.mesh_extra_ps(core.core_id, self.owner)
        yield from core.consume(cost + jitter, "overhead")
        attempts = 0
        while faults.flag_write_dropped(core.core_id, self.owner, self.name):
            attempts += 1
            if attempts > faults.plan.max_retries:
                faults.raise_fault(
                    "flag_write",
                    f"flag write lost {attempts} times",
                    actor=f"core{core.core_id}", owner=self.owner,
                    flag=self.name, level=level)
            verify = machine.latency.mpb_access(core.core_id, self.owner)
            yield from core.consume(verify + cost, "overhead")
        if machine.san is not None:
            machine.san.on_flag_write(self, level, core.core_id)
        self._apply(level)

    def _apply(self, level: bool) -> None:
        if level:
            self.gate.set()
        else:
            self.gate.clear()

    def wait_set(self, core: "Core") -> Generator:
        """``core`` polls until the flag is 1 (``rcce_wait_until``)."""
        return self._wait_level(core, True)

    def wait_clear(self, core: "Core") -> Generator:
        """``core`` polls until the flag is 0."""
        return self._wait_level(core, False)

    def _wait_level(self, core: "Core", level: bool) -> Generator:
        machine = self.machine
        notify = machine.latency.flag_notify(core.core_id, self.owner)
        faults = machine.faults
        if faults is not None:
            notify += faults.flag_stale_extra_ps(core.core_id, self.owner,
                                                 self.name)
        event = self.gate.wait_level(level, notify)
        event.label = self._label_set if level else self._label_clear
        # Inline of Core.wait (no CPU occupancy while polling).
        sim = machine.sim
        t0 = sim._now
        yield event
        core.account.states["wait_flag"] += sim._now - t0
        if machine.san is not None:
            machine.san.on_flag_observed(self, level, core.core_id)

    # -- untimed operations (simulation bookkeeping) -----------------------
    def force(self, value: bool, actor: int | None = None) -> None:
        """Set the level without charging anyone.

        ``actor`` attributes the write when the force models a flag
        transition that is part of an already-charged protocol access
        (the p2p announcement channel); leave it ``None`` for test/setup
        forces that are not protocol traffic.
        """
        if self.machine.san is not None:
            self.machine.san.on_flag_force(self, value, actor)
        if value:
            self.gate.set()
        else:
            self.gate.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flag owner={self.owner} {self.name!r} value={self.value}>"
