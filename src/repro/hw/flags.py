"""MPB synchronization flags with modeled access costs.

A :class:`Flag` pairs a kernel :class:`~repro.sim.events.Gate` with the MPB
that physically holds it, so setting/clearing from a given core costs that
core the corresponding MPB write latency, and a waiting core observes the
change only after its final poll's read latency (RCCE's
``rcce_wait_until``).

The generator methods charge time to the acting core's
:class:`~repro.sim.trace.TimeAccount` under the states ``overhead`` (flag
writes) and ``wait_flag`` (waits), which is what lets the test suite
reproduce the paper's profiling claim that cores spend up to ~50% of their
time in ``rcce_wait_until``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.sim.events import Gate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.machine import Core, Machine


class Flag:
    """One synchronization flag living in ``owner``'s MPB."""

    __slots__ = ("machine", "owner", "name", "gate")

    def __init__(self, machine: "Machine", owner: int, name: str):
        self.machine = machine
        self.owner = owner
        self.name = name
        self.gate = Gate(machine.sim, name=f"flag[{owner}].{name}")

    @property
    def value(self) -> bool:
        return self.gate.value

    # -- timed operations (generators; use via ``yield from``) ------------
    def set_by(self, core: "Core") -> Generator:
        """``core`` writes 1 to the flag (MPB write latency applies)."""
        cost = self.machine.latency.flag_write(core.core_id, self.owner)
        yield from core.consume(cost, "overhead")
        self.gate.set()

    def clear_by(self, core: "Core") -> Generator:
        """``core`` writes 0 to the flag."""
        cost = self.machine.latency.flag_write(core.core_id, self.owner)
        yield from core.consume(cost, "overhead")
        self.gate.clear()

    def wait_set(self, core: "Core") -> Generator:
        """``core`` polls until the flag is 1 (``rcce_wait_until``)."""
        notify = self.machine.latency.flag_notify(core.core_id, self.owner)
        yield from core.wait(self.gate.wait_true(notify), "wait_flag")

    def wait_clear(self, core: "Core") -> Generator:
        """``core`` polls until the flag is 0."""
        notify = self.machine.latency.flag_notify(core.core_id, self.owner)
        yield from core.wait(self.gate.wait_false(notify), "wait_flag")

    # -- untimed operations (simulation bookkeeping) -----------------------
    def force(self, value: bool) -> None:
        """Set the level without charging anyone (test/setup helper)."""
        if value:
            self.gate.set()
        else:
            self.gate.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flag owner={self.owner} {self.name!r} value={self.value}>"
