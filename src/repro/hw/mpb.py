"""Message-passing buffers: the SCC's per-core on-chip SRAM.

Each core owns 8 KB of SRAM that every core in the system can read and
write.  The simulator stores real bytes (NumPy ``uint8`` arrays), so data
that travels through the simulated machine is actually moved and the test
suite can verify collective results bit-for-bit against NumPy ground truth.

Layout convention: the first ``flag_bytes`` of each MPB are reserved for
synchronization flags (modeled separately as :class:`~repro.hw.flags.Flag`
objects); the rest is payload space handed out by a bump allocator
(:meth:`MPB.alloc`), which the communication stacks use to carve out their
send buffers and double-buffer halves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sanitizer import Sanitizer


class MPBError(Exception):
    """Out-of-bounds access or exhausted allocation."""


class MPBRegion:
    """A contiguous window into one core's MPB."""

    __slots__ = ("mpb", "offset", "size")

    def __init__(self, mpb: "MPB", offset: int, size: int):
        self.mpb = mpb
        self.offset = offset
        self.size = size

    @property
    def owner(self) -> int:
        return self.mpb.core_id

    def write(self, data: np.ndarray, at: int = 0,
              actor: Optional[int] = None) -> None:
        """Copy ``data`` (any dtype, C-contiguous) into the region.

        ``actor`` attributes the access to a core for the MPB sanitizer;
        accesses without an actor are treated as untimed setup.
        """
        raw = as_bytes(data)
        if at < 0 or at + raw.size > self.size:
            san = self.mpb.san
            if san is not None:
                san.on_oob(self.mpb, "region write", self.offset + at,
                           int(raw.size))
            raise MPBError(
                f"write of {raw.size} B at {at} exceeds region of {self.size} B"
            )
        self.mpb.write(self.offset + at, raw, actor=actor)

    def read(self, nbytes: int, at: int = 0,
             actor: Optional[int] = None) -> np.ndarray:
        """Read ``nbytes`` from the region (returns a fresh uint8 array)."""
        if at < 0 or at + nbytes > self.size:
            san = self.mpb.san
            if san is not None:
                san.on_oob(self.mpb, "region read", self.offset + at, nbytes)
            raise MPBError(
                f"read of {nbytes} B at {at} exceeds region of {self.size} B"
            )
        return self.mpb.read(self.offset + at, nbytes, actor=actor)

    def read_into(self, out: np.ndarray, at: int = 0,
                  actor: Optional[int] = None) -> None:
        """Read ``out.nbytes`` bytes from the region into ``out``."""
        raw = out.view(np.uint8).reshape(-1)
        raw[:] = self.read(raw.size, at, actor=actor)

    def halves(self) -> tuple["MPBRegion", "MPBRegion"]:
        """Split into two equal double-buffer halves (line-aligned)."""
        line = self.mpb.line_bytes
        half = (self.size // 2) // line * line
        if half == 0:
            raise MPBError(f"region of {self.size} B too small to halve")
        return (MPBRegion(self.mpb, self.offset, half),
                MPBRegion(self.mpb, self.offset + half, half))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MPBRegion core={self.owner} "
                f"[{self.offset}, {self.offset + self.size})>")


class MPB:
    """One core's message-passing buffer."""

    __slots__ = ("core_id", "size", "line_bytes", "payload_offset",
                 "data", "_alloc_ptr", "io_reads", "io_read_bytes",
                 "io_writes", "io_write_bytes", "san")

    def __init__(self, core_id: int, size: int, line_bytes: int,
                 flag_bytes: int):
        if flag_bytes >= size:
            raise MPBError("flag region exceeds MPB size")
        self.core_id = core_id
        self.size = size
        self.line_bytes = line_bytes
        self.payload_offset = flag_bytes
        self.data = np.zeros(size, dtype=np.uint8)
        self._alloc_ptr = flag_bytes
        #: MPB sanitizer, or None.  Hook sites guard on this being
        #: non-None, so uninstrumented runs pay one attribute check
        #: (the same zero-overhead discipline as ``machine.faults``).
        self.san: Optional["Sanitizer"] = None
        self.reset_counters()

    # -- raw access ---------------------------------------------------------
    def write(self, offset: int, raw: np.ndarray,
              actor: Optional[int] = None) -> None:
        san = self.san
        if offset < 0 or offset + raw.size > self.size:
            if san is not None:
                san.on_oob(self, "write", offset, int(raw.size))
            raise MPBError(
                f"MPB[{self.core_id}]: write of {raw.size} B at offset "
                f"{offset} out of bounds (size {self.size})"
            )
        if san is not None:
            san.on_write(self, offset, int(raw.size), actor)
        self.data[offset:offset + raw.size] = raw
        self.io_writes += 1
        self.io_write_bytes += int(raw.size)

    def read(self, offset: int, nbytes: int,
             actor: Optional[int] = None) -> np.ndarray:
        san = self.san
        if offset < 0 or offset + nbytes > self.size:
            if san is not None:
                san.on_oob(self, "read", offset, nbytes)
            raise MPBError(
                f"MPB[{self.core_id}]: read of {nbytes} B at offset "
                f"{offset} out of bounds (size {self.size})"
            )
        if san is not None:
            san.on_read(self, offset, nbytes, actor)
        self.io_reads += 1
        self.io_read_bytes += nbytes
        return self.data[offset:offset + nbytes].copy()

    # -- allocation ---------------------------------------------------------
    @property
    def payload_bytes(self) -> int:
        return self.size - self.payload_offset

    @property
    def free_bytes(self) -> int:
        return self.size - self._alloc_ptr

    def alloc(self, nbytes: int, align: int | None = None) -> MPBRegion:
        """Bump-allocate a payload region (line-aligned by default)."""
        align = align or self.line_bytes
        start = -(-self._alloc_ptr // align) * align
        if nbytes <= 0:
            raise MPBError(f"invalid allocation size {nbytes}")
        if start + nbytes > self.size:
            raise MPBError(
                f"MPB[{self.core_id}]: allocation of {nbytes} B failed "
                f"({self.size - start} B free)"
            )
        self._alloc_ptr = start + nbytes
        if self.san is not None:
            self.san.on_alloc(self, start, nbytes)
        return MPBRegion(self, start, nbytes)

    def reset_alloc(self) -> None:
        """Release all payload allocations (data bytes are untouched)."""
        self._alloc_ptr = self.payload_offset
        if self.san is not None:
            self.san.on_reset_alloc(self)

    def reset_counters(self) -> None:
        """Zero the access counters (reads/writes of actual SRAM bytes,
        used by the observability layer's metrics exports)."""
        self.io_reads = 0
        self.io_read_bytes = 0
        self.io_writes = 0
        self.io_write_bytes = 0

    def clear(self) -> None:
        self.data[:] = 0
        self.reset_alloc()
        if self.san is not None:
            self.san.on_clear(self)


def as_bytes(array: np.ndarray) -> np.ndarray:
    """Flat uint8 view of a C-contiguous array (no copy)."""
    array = np.ascontiguousarray(array)
    return array.view(np.uint8).reshape(-1)
