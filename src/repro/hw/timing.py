"""Hardware latency model: pure functions from operations to picoseconds.

This module models *hardware* costs only — wire latencies, SRAM/DRAM access
times, per-line copy pipeline costs.  Software overheads (library call
costs, the extra put/get invocation for a padded tail line, request-list
management) are charged by the library layers (``repro.rcce``,
``repro.ircce``, ...), which is exactly the separation the paper exploits:
its optimizations B and C change software costs on identical hardware.

All methods return integer picoseconds.

Memoization
-----------
Every latency here is a pure function of the configuration, the topology,
and the call arguments — but the protocol layers ask for the same handful
of values millions of times per sweep (every flag write, every poll, every
per-chunk copy).  The model therefore memoizes its results in per-instance
tables keyed by the call arguments.  Two things keep this exactly
equivalent to recomputing:

* the tables are segregated by the *current* ``erratum_enabled`` level, so
  the fault injector's scheduled arbiter-erratum toggle (which flips
  ``config.erratum_enabled`` mid-simulation) transparently switches to the
  other table instead of serving stale values;
* mutating any *other* config field after construction requires an explicit
  :meth:`LatencyModel.invalidate` (nothing in the repo does this — ablation
  benchmarks build fresh configs per point — but the escape hatch exists).

Pass ``cache=False`` to get the direct, recompute-every-call reference
implementation; ``tests/hw/test_timing_memo.py`` asserts the two are
bit-identical over a sampled argument grid.
"""

from __future__ import annotations

from repro.hw.config import SCCConfig
from repro.hw.topology import Topology


class LatencyModel:
    """Computes access/copy latencies for a given config + topology."""

    def __init__(self, config: SCCConfig, topology: Topology, *,
                 cache: bool = True):
        self.config = config
        self.topology = topology
        self._cache_enabled = bool(cache)
        self.invalidate()

    def invalidate(self) -> None:
        """Drop all memoized latencies.

        Call after mutating a field of :attr:`config` on a live machine
        (other than ``erratum_enabled``, whose two levels have separate
        tables and need no invalidation).  Also re-snapshots the clock
        periods in case a frequency changed.
        """
        self._core_ps = self.config.core_clock().ps_per_cycle
        self._mesh_ps = self.config.mesh_clock().ps_per_cycle
        # One memo table per erratum level; indexed by the bool itself.
        self._memo: tuple[dict, dict] = ({}, {})

    # -- cycle helpers -----------------------------------------------------
    def core_cycles(self, n: int | float) -> int:
        return int(round(n * self._core_ps))

    def mesh_cycles(self, n: int | float) -> int:
        return int(round(n * self._mesh_ps))

    # -- line arithmetic -----------------------------------------------------
    def lines(self, nbytes: int) -> int:
        """Number of L1 lines covering ``nbytes`` (the WCB transfers whole
        lines; partial tail lines are padded up)."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        line = self.config.l1_line_bytes
        return -(-nbytes // line)

    def has_padded_tail(self, nbytes: int) -> bool:
        """True when the message does not fill its last cache line — the
        condition that triggers RCCE's extra put/get call (period-4 spikes,
        Section V-A)."""
        return nbytes % self.config.l1_line_bytes != 0

    # -- single-access latencies ------------------------------------------------
    def mpb_access(self, accessor: int, owner: int) -> int:
        """Latency of one MPB access (a flag read/write, or the startup
        latency of a bulk copy) by core ``accessor`` to the MPB owned by
        core ``owner``."""
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("acc", accessor, owner)
            value = memo.get(key)
            if value is None:
                value = memo[key] = self._raw_mpb_access(accessor, owner)
            return value
        return self._raw_mpb_access(accessor, owner)

    def _raw_mpb_access(self, accessor: int, owner: int) -> int:
        cfg = self.config
        if accessor == owner:
            if cfg.erratum_enabled:
                return (self.core_cycles(cfg.mpb_local_bug_core_cycles)
                        + self.mesh_cycles(cfg.mpb_local_bug_mesh_cycles))
            return self.core_cycles(cfg.mpb_local_core_cycles)
        hops = self.topology.hops(accessor, owner)
        # Same-tile remote access still crosses the tile's mesh interface.
        mesh = cfg.mpb_mesh_cycles_per_hop * max(1, 2 * hops)
        crossings = self.topology.chip_crossings(accessor, owner)
        if crossings:
            # Board-level link tier: round trip over each slow crossing.
            mesh += cfg.inter_chip_access_mesh_cycles * 2 * crossings
        return (self.core_cycles(cfg.mpb_remote_core_cycles)
                + self.mesh_cycles(mesh))

    def dram_access(self, core: int) -> int:
        """First-touch latency of an off-chip DRAM access."""
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("dram", core)
            value = memo.get(key)
            if value is None:
                value = memo[key] = self._raw_dram_access(core)
            return value
        return self._raw_dram_access(core)

    def _raw_dram_access(self, core: int) -> int:
        cfg = self.config
        d = self.topology.hops_to_mc(core)
        return (self.core_cycles(cfg.dram_core_cycles)
                + self.mesh_cycles(cfg.dram_mesh_cycles_per_hop * d))

    def flag_write(self, writer: int, owner: int) -> int:
        """Cost for ``writer`` to set/clear a flag living in ``owner``'s MPB."""
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("fw", writer, owner)
            value = memo.get(key)
            if value is None:
                value = memo[key] = (
                    self.mpb_access(writer, owner)
                    + self.core_cycles(self.config.flag_write_extra_cycles))
            return value
        return (self.mpb_access(writer, owner)
                + self.core_cycles(self.config.flag_write_extra_cycles))

    def flag_notify(self, reader: int, owner: int) -> int:
        """Delay between a flag level change and the polling core observing
        it: the final successful poll's read latency."""
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("fn", reader, owner)
            value = memo.get(key)
            if value is None:
                poll = self.core_cycles(self.config.flag_poll_interval_cycles)
                value = memo[key] = self.mpb_access(reader, owner) + poll
            return value
        poll = self.core_cycles(self.config.flag_poll_interval_cycles)
        return self.mpb_access(reader, owner) + poll

    # -- bulk copies -----------------------------------------------------------
    def _local_erratum_line_extra(self, accessor: int, owner: int) -> int:
        """Per-line surcharge when a *local* MPB is accessed with the
        arbiter-erratum workaround active: every line becomes a packet the
        core sends to itself through the mesh."""
        if accessor == owner and self.config.erratum_enabled:
            return self.mesh_cycles(self.config.mpb_local_bug_mesh_cycles)
        return 0

    def _inter_chip_line_extra(self, accessor: int, owner: int) -> int:
        """Per-line bandwidth surcharge for cross-chip bulk copies: every
        line funnels through the board-level link(s) between the chips."""
        crossings = self.topology.chip_crossings(accessor, owner)
        if crossings:
            return self.mesh_cycles(
                self.config.inter_chip_line_mesh_cycles * crossings)
        return 0

    def mpb_write_bytes(self, writer: int, owner: int, nbytes: int) -> int:
        """Copy ``nbytes`` from ``writer``'s (cached) private memory into
        ``owner``'s MPB, through the write-combining buffer."""
        if nbytes == 0:
            return 0
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("wb", writer, owner, nbytes)
            value = memo.get(key)
            if value is None:
                value = memo[key] = self._raw_mpb_write_bytes(
                    writer, owner, nbytes)
            return value
        return self._raw_mpb_write_bytes(writer, owner, nbytes)

    def _raw_mpb_write_bytes(self, writer: int, owner: int,
                             nbytes: int) -> int:
        n = self.lines(nbytes)
        per_line = (self.core_cycles(self.config.put_line_core_cycles)
                    + self.core_cycles(self.config.cache_line_core_cycles)
                    + self._local_erratum_line_extra(writer, owner)
                    + self._inter_chip_line_extra(writer, owner))
        return self._raw_mpb_access(writer, owner) + n * per_line

    def mpb_read_bytes(self, reader: int, owner: int, nbytes: int) -> int:
        """Copy ``nbytes`` from ``owner``'s MPB into ``reader``'s private
        memory (which is cached, so the write side is cheap)."""
        if nbytes == 0:
            return 0
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("rb", reader, owner, nbytes)
            value = memo.get(key)
            if value is None:
                value = memo[key] = self._raw_mpb_read_bytes(
                    reader, owner, nbytes)
            return value
        return self._raw_mpb_read_bytes(reader, owner, nbytes)

    def _raw_mpb_read_bytes(self, reader: int, owner: int,
                            nbytes: int) -> int:
        n = self.lines(nbytes)
        per_line = (self.core_cycles(self.config.get_line_core_cycles)
                    + self.core_cycles(self.config.cache_line_core_cycles)
                    + self._local_erratum_line_extra(reader, owner)
                    + self._inter_chip_line_extra(reader, owner))
        return self._raw_mpb_access(reader, owner) + n * per_line

    def mpb_stream_read(self, reader: int, owner: int, nbytes: int) -> int:
        """Read ``nbytes`` from an MPB as reduction *operands* (no private
        copy written) — the MPB-direct Allreduce's input path."""
        if nbytes == 0:
            return 0
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("sr", reader, owner, nbytes)
            value = memo.get(key)
            if value is None:
                value = memo[key] = self._raw_mpb_stream_read(
                    reader, owner, nbytes)
            return value
        return self._raw_mpb_stream_read(reader, owner, nbytes)

    def _raw_mpb_stream_read(self, reader: int, owner: int,
                             nbytes: int) -> int:
        n = self.lines(nbytes)
        per_line = (self.core_cycles(self.config.get_line_core_cycles
                                     + self.config.stream_read_extra_cycles)
                    + self._local_erratum_line_extra(reader, owner)
                    + self._inter_chip_line_extra(reader, owner))
        return self._raw_mpb_access(reader, owner) + n * per_line

    def mpb_stream_write(self, writer: int, owner: int, nbytes: int) -> int:
        """Write ``nbytes`` of reduction *results* into an MPB (no private
        copy read) — the MPB-direct Allreduce's output path.  For the
        ``writer == owner`` case the per-access erratum penalty applies to
        every line, which is why the paper measured only ~10% gain."""
        if nbytes == 0:
            return 0
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("sw", writer, owner, nbytes)
            value = memo.get(key)
            if value is None:
                value = memo[key] = self._raw_mpb_stream_write(
                    writer, owner, nbytes)
            return value
        return self._raw_mpb_stream_write(writer, owner, nbytes)

    def _raw_mpb_stream_write(self, writer: int, owner: int,
                              nbytes: int) -> int:
        n = self.lines(nbytes)
        per_line = (self.core_cycles(self.config.put_line_core_cycles)
                    + self._local_erratum_line_extra(writer, owner)
                    + self._inter_chip_line_extra(writer, owner))
        return self._raw_mpb_access(writer, owner) + n * per_line

    def private_copy_bytes(self, nbytes: int) -> int:
        """memcpy between two cached private-memory buffers."""
        if nbytes == 0:
            return 0
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("pc", nbytes)
            value = memo.get(key)
            if value is None:
                n = self.lines(nbytes)
                value = memo[key] = n * self.core_cycles(
                    2 * self.config.cache_line_core_cycles)
            return value
        n = self.lines(nbytes)
        return n * self.core_cycles(2 * self.config.cache_line_core_cycles)

    def private_first_touch(self, core: int, nbytes: int) -> int:
        """Cost of faulting ``nbytes`` of private memory into the cache."""
        if nbytes == 0:
            return 0
        return self.lines(nbytes) * self.dram_access(core)

    # -- computation ---------------------------------------------------------
    def reduce_doubles(self, n: int) -> int:
        """Arithmetic cost of reducing ``n`` pairs of doubles."""
        if n < 0:
            raise ValueError(f"negative element count: {n}")
        if self._cache_enabled:
            memo = self._memo[self.config.erratum_enabled]
            key = ("rd", n)
            value = memo.get(key)
            if value is None:
                value = memo[key] = self.core_cycles(
                    n * self.config.reduce_op_cycles_per_double)
            return value
        return self.core_cycles(n * self.config.reduce_op_cycles_per_double)
