"""SCC hardware configuration.

Every timing constant of the simulated chip lives here.  The defaults model
the *standard preset* used in the paper's evaluation (Section V): cores at
533 MHz, mesh network and DRAM at 800 MHz.  Latency figures are taken from
the paper and the sources it cites:

* local MPB access: **15 core cycles**; with the arbiter-erratum workaround
  active (cores send packets to themselves instead of accessing the local
  MPB directly): **45 core cycles + 8 mesh cycles** (paper Section IV-D,
  citing the SCC programmer's guide),
* off-chip DRAM access: **40 core cycles + 8·d mesh cycles**, d = hops to
  the responsible memory controller (paper Section IV-D, citing [5]),
* L1 cache line: **32 bytes = 4 doubles** — the origin of the period-4
  latency spikes in Fig. 9 (Section V-A),
* per-core MPB: **8 KB** (16 KB per tile, Section II).

Software-overhead constants (cycles charged per library call) are the
*calibrated* part of the model: they are chosen so that the step-wise
Allreduce speedups of Section IV land near the paper's reported +25%
(blocking→iRCCE), +65% (→lightweight), +28% (→balanced, at 552 elements)
and +10% (→MPB-direct, with the erratum active).  EXPERIMENTS.md records
the values measured with these defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.clock import Clock

if TYPE_CHECKING:
    from repro.hw.topology import Topology


@dataclass
class SCCConfig:
    """All parameters of the simulated SCC.

    Instances are mutable on purpose (ablation benchmarks flip individual
    fields, e.g. ``erratum_enabled``); use :meth:`copy` to derive variants
    without touching a shared instance.
    """

    # ------------------------------------------------------------------ #
    # Clock domains (standard preset: "Tile533_Mesh800_DDR800")
    # ------------------------------------------------------------------ #
    core_freq_hz: int = 533_000_000
    mesh_freq_hz: int = 800_000_000
    dram_freq_hz: int = 800_000_000

    # ------------------------------------------------------------------ #
    # Topology.  The default is the paper's chip: a 6x4 tile mesh, 2
    # cores per tile -> 48 cores.  Setting ``topology`` to a registry
    # spec (see repro.hw.topo, e.g. "mesh:8x8", "torus:6x4",
    # "cluster:2x24") overrides the three legacy mesh fields below,
    # which remain for the existing ablations and for the default key.
    # ------------------------------------------------------------------ #
    mesh_cols: int = 6
    mesh_rows: int = 4
    cores_per_tile: int = 2
    topology: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Memory geometry
    # ------------------------------------------------------------------ #
    l1_line_bytes: int = 32          # P54C L1 line; 4 doubles
    mpb_bytes_per_core: int = 8192   # on-chip SRAM message-passing buffer
    mpb_flag_bytes: int = 192        # slice of the MPB reserved for flags

    # ------------------------------------------------------------------ #
    # Hardware access latencies (paper Section IV-D)
    # ------------------------------------------------------------------ #
    # Local MPB access without the erratum workaround:
    mpb_local_core_cycles: int = 15
    # Local MPB access with the workaround (packet to self):
    mpb_local_bug_core_cycles: int = 45
    mpb_local_bug_mesh_cycles: int = 8
    # Remote MPB access: fixed core-side cost + per-hop mesh cost
    # (round trip for reads; writes are posted but the WCB drain is
    # captured by the per-line pipeline cost below).
    mpb_remote_core_cycles: int = 45
    mpb_mesh_cycles_per_hop: int = 4
    # Off-chip DRAM: first-touch latency; later accesses hit the L2.
    dram_core_cycles: int = 40
    dram_mesh_cycles_per_hop: int = 8
    # Cached private-memory access (L1/L2 hit), per cache line:
    cache_line_core_cycles: int = 4
    # Board-level links between chips of a multi-chip "cluster:" topology
    # (PCIe/TCP-bridged system-interface links on real SCC boards, with
    # latencies in the tens of microseconds): a fixed per-crossing
    # surcharge on every cross-chip MPB/flag access (8000 mesh cycles =
    # 10 us at 800 MHz, doubled for the round trip), plus a per-line
    # per-crossing bandwidth surcharge on bulk copies (400 mesh cycles =
    # 0.5 us per 32 B line, ~64 MB/s).  Both only apply when the active
    # topology has chips > 1.
    inter_chip_access_mesh_cycles: int = 8000
    inter_chip_line_mesh_cycles: int = 400

    # The SCC local-MPB arbiter bug (see paper Section IV-D).  True models
    # real silicon (workaround active, local MPB accesses routed through
    # the mesh); False models the hypothetical fixed chip.
    erratum_enabled: bool = True

    # Model each MPB's single access port: bulk transfers serialize when
    # two cores hit the same MPB simultaneously (e.g. the owner filling
    # its send buffer while the right neighbour drains it).  Off by
    # default — the paper's effects do not need it — but available for
    # the contention ablation and for big-message realism.
    model_mpb_contention: bool = False

    # ------------------------------------------------------------------ #
    # Data-movement costs per 32-byte line.  These are *effective* costs
    # including the per-line software work of RCCE's memcpy paths; the
    # real chip's MPB copy bandwidth for small unaligned chunks was on
    # the order of tens of MB/s, i.e. hundreds of core cycles per line.
    # ------------------------------------------------------------------ #
    # Writing a line core->MPB through the write-combining buffer:
    put_line_core_cycles: int = 110
    # Reading a line MPB->core (pipelined after the first-line latency):
    get_line_core_cycles: int = 150
    # Extra per-line cost when MPB contents are consumed *directly* as
    # reduction operands (MPB-direct Allreduce): the access pattern defeats
    # the streaming memcpy's read combining.
    stream_read_extra_cycles: int = 4
    # Reduction arithmetic: cycles per double (load-add-store on P54C):
    reduce_op_cycles_per_double: int = 24

    # ------------------------------------------------------------------ #
    # Software overheads, RCCE blocking layer (cycles per call)
    # ------------------------------------------------------------------ #
    rcce_send_call_cycles: int = 2400
    rcce_recv_call_cycles: int = 2400
    # One low-level put/get invocation; a message whose size is not a
    # multiple of the L1 line pays this a second time for the padded tail
    # line (paper Section V-A, the period-4 "spikes").
    rcce_putget_call_cycles: int = 900
    flag_write_extra_cycles: int = 120
    flag_poll_interval_cycles: int = 250  # mean residual poll delay

    # ------------------------------------------------------------------ #
    # Software overheads, iRCCE layer (Section IV-B: list keeping,
    # wildcard support, cancellation make these expensive)
    # ------------------------------------------------------------------ #
    ircce_issue_cycles: int = 1700
    ircce_complete_cycles: int = 1300
    ircce_test_cycles: int = 120

    # ------------------------------------------------------------------ #
    # Software overheads, lightweight non-blocking layer (Section IV-B)
    # ------------------------------------------------------------------ #
    lwnb_issue_cycles: int = 260
    lwnb_complete_cycles: int = 160
    lwnb_test_cycles: int = 40

    # ------------------------------------------------------------------ #
    # RCKMPI model (Section III / V-A): full MPI stack on an MPB channel.
    # Byte-granular packets (no line padding -> smooth curves) but heavy
    # per-call and per-packet software overhead (2x-5x slower overall).
    # ------------------------------------------------------------------ #
    rckmpi_call_cycles: int = 6500
    rckmpi_packet_bytes: int = 2048
    rckmpi_packet_cycles: int = 9000
    rckmpi_byte_core_cycles_x8: int = 6  # core cycles per 8 bytes moved

    # ------------------------------------------------------------------ #
    # Collective-layer constants
    # ------------------------------------------------------------------ #
    collective_call_cycles: int = 180    # entry/exit of a collective
    barrier_flag_cycles: int = 120
    # Per-round software cost of the MPB-direct Allreduce (replaces the
    # put/get call overheads of the buffer-based ring).
    mpb_round_overhead_cycles: int = 3400

    # Free-form tag -> value escape hatch for experiments.
    extras: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        for name in ("mesh_cols", "mesh_rows", "cores_per_tile"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(
                    f"{name} must be positive, got {value} "
                    f"(topology dimensions must be positive)")
        if self.l1_line_bytes <= 0 or self.l1_line_bytes % 8:
            raise ValueError(
                f"l1_line_bytes must be a positive multiple of 8 "
                f"(whole doubles per line), got {self.l1_line_bytes}")
        if self.mpb_flag_bytes <= 0:
            raise ValueError(
                f"mpb_flag_bytes must be positive, got "
                f"{self.mpb_flag_bytes}")
        if self.mpb_flag_bytes % self.l1_line_bytes:
            raise ValueError(
                f"mpb_flag_bytes ({self.mpb_flag_bytes}) must be a "
                f"multiple of the cache-line/flag granularity "
                f"({self.l1_line_bytes} B)")
        if self.mpb_bytes_per_core <= self.mpb_flag_bytes:
            raise ValueError(
                f"MPB must be larger than its flag region: "
                f"mpb_bytes_per_core={self.mpb_bytes_per_core} B vs "
                f"mpb_flag_bytes={self.mpb_flag_bytes} B")
        if self.mpb_bytes_per_core % self.l1_line_bytes:
            raise ValueError(
                f"MPB size must be line-aligned: mpb_bytes_per_core="
                f"{self.mpb_bytes_per_core} is not a multiple of "
                f"l1_line_bytes={self.l1_line_bytes}")
        for name in ("core_freq_hz", "mesh_freq_hz", "dram_freq_hz"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be positive, got {getattr(self, name)}")
        for name in ("inter_chip_access_mesh_cycles",
                     "inter_chip_line_mesh_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be non-negative, got {getattr(self, name)}")
        if self.topology is not None:
            self.resolved_topology()  # raises on a malformed spec

    def check_rank_count(self, cores: int) -> None:
        """Reject SPMD launches that do not fit the mesh.

        Raises :class:`ValueError` for non-positive counts and for counts
        exceeding the chip's ``num_cores``.
        """
        if cores <= 0:
            raise ValueError(f"core count must be positive, got {cores}")
        if cores > self.num_cores:
            raise ValueError(
                f"requested {cores} cores; topology "
                f"{self.topology_key()!r} has only {self.num_cores}")

    # -- derived quantities ---------------------------------------------
    def topology_key(self) -> str:
        """Registry spec of the active topology.

        The explicit ``topology`` field when set, otherwise the legacy
        mesh fields rendered as a ``mesh:`` spec (``mesh:6x4`` for the
        default chip).
        """
        if self.topology is not None:
            return self.topology
        key = f"mesh:{self.mesh_cols}x{self.mesh_rows}"
        if self.cores_per_tile != 2:
            key += f"x{self.cores_per_tile}"
        return key

    def resolved_topology(self) -> "Topology":
        """The active :class:`Topology` (cached by the registry)."""
        from repro.hw.topo import get_topology

        return get_topology(self.topology_key())

    @property
    def num_tiles(self) -> int:
        if self.topology is None:
            return self.mesh_cols * self.mesh_rows
        return self.resolved_topology().num_tiles

    @property
    def num_cores(self) -> int:
        if self.topology is None:
            return self.mesh_cols * self.mesh_rows * self.cores_per_tile
        return self.resolved_topology().num_cores

    @property
    def mpb_payload_bytes(self) -> int:
        """MPB bytes available for message payloads (flags excluded)."""
        return self.mpb_bytes_per_core - self.mpb_flag_bytes

    @property
    def doubles_per_line(self) -> int:
        return self.l1_line_bytes // 8

    def core_clock(self) -> Clock:
        return Clock(self.core_freq_hz)

    def mesh_clock(self) -> Clock:
        return Clock(self.mesh_freq_hz)

    def dram_clock(self) -> Clock:
        return Clock(self.dram_freq_hz)

    def copy(self, **overrides: Any) -> "SCCConfig":
        """A new config with ``overrides`` applied."""
        return replace(self, **overrides)


#: Named clock presets the SCC's sccKit supports (subset); used by the
#: clock-preset ablation benchmark.
CLOCK_PRESETS: dict[str, tuple[int, int, int]] = {
    "533_800_800": (533_000_000, 800_000_000, 800_000_000),
    "800_800_800": (800_000_000, 800_000_000, 800_000_000),
    "800_1600_800": (800_000_000, 1_600_000_000, 800_000_000),
    "533_800_1066": (533_000_000, 800_000_000, 1_066_000_000),
}


def config_for_preset(name: str, **overrides: Any) -> SCCConfig:
    """Build an :class:`SCCConfig` for a named clock preset."""
    try:
        core, mesh, dram = CLOCK_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown clock preset {name!r}; known: {sorted(CLOCK_PRESETS)}"
        ) from None
    return SCCConfig(
        core_freq_hz=core, mesh_freq_hz=mesh, dram_freq_hz=dram, **overrides
    )
