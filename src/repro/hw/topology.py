"""SCC mesh topology: tiles, cores, XY routing, memory controllers.

The SCC arranges 24 tiles in a 6 (columns) x 4 (rows) mesh; each tile holds
two cores, so core ``i`` sits on tile ``i // 2``.  Tiles are numbered
row-major: tile ``t`` has mesh coordinates ``(x, y) = (t % cols, t // cols)``.
Packets are routed X-first then Y (dimension-ordered XY routing), which is
deadlock-free and gives a hop count equal to the Manhattan distance.

Four DDR3 memory controllers hang off the mesh at routers ``(0, 0)``,
``(cols-1, 0)``, ``(0, rows-1)`` and ``(cols-1, rows-1)``; each core is
served by the controller of its quadrant (as on the real chip, where the
lookup tables default to a quadrant mapping).

Beyond the paper's fixed 6x4 chip, :class:`Topology` models the whole
family the registry in :mod:`repro.hw.topo` hands out:

* arbitrary ``cols x rows`` meshes with any ``cores_per_tile``;
* **tori** (``torus=True``): each mesh axis wraps around, XY routing steps
  in the shorter wrap direction and hop counts use the wrapped distance;
* **heterogeneous links** (``link_weights``): individual router-to-router
  links may carry an integer hop-cost weight > 1, modelling a slow or
  congested link -- ``hops`` then sums link weights along the XY route;
* **memory-controller placement** (``mc_placement``): an explicit tuple of
  attach routers replacing the default quadrant corners;
* **multi-chip clusters** (``chips > 1``): ``cols``/``rows`` describe one
  chip; ``chips`` identical chips are chained on a board.  Tile and core
  ids are global (chip 0 first), coordinates are chip-local.  Cross-chip
  traffic leaves through the chip's gateway router at local ``(0, 0)``
  (the system-interface corner, as on the real SCC's SIF) and pays one
  board-level crossing per chip boundary -- crossings are *not* counted
  in ``hops`` but reported by :meth:`chip_crossings` so the latency model
  can charge them as a separate, much slower link tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional

#: A single weighted link: two adjacent router coordinates plus an integer
#: hop-cost weight >= 1 (1 is the homogeneous default).
LinkWeight = tuple[tuple[int, int], tuple[int, int], int]


@dataclass(frozen=True)
class Topology:
    """Geometry of the core/tile mesh plus routing helpers."""

    cols: int = 6
    rows: int = 4
    cores_per_tile: int = 2
    torus: bool = False
    chips: int = 1
    mc_placement: Optional[tuple[tuple[int, int], ...]] = None
    link_weights: Optional[tuple[LinkWeight, ...]] = None

    def __post_init__(self) -> None:
        if self.cols <= 0 or self.rows <= 0 or self.cores_per_tile <= 0:
            raise ValueError("topology dimensions must be positive")
        if self.chips <= 0:
            raise ValueError("chip count must be positive")
        if self.mc_placement is not None:
            object.__setattr__(self, "mc_placement",
                               tuple(tuple(r) for r in self.mc_placement))
            self._check_mc_placement()
        if self.link_weights is not None:
            object.__setattr__(self, "link_weights",
                               self._canonical_link_weights())

    def _check_mc_placement(self) -> None:
        placement = self.mc_placement
        assert placement is not None
        if not placement:
            raise ValueError("mc_placement must name at least one router")
        seen: set[tuple[int, int]] = set()
        for router in placement:
            x, y = router
            if not (0 <= x < self.cols and 0 <= y < self.rows):
                raise ValueError(
                    f"mc_placement router {router} outside the "
                    f"{self.cols}x{self.rows} mesh")
            if router in seen:
                raise ValueError(
                    f"mc_placement lists router {router} twice")
            seen.add(router)

    def _canonical_link_weights(self) -> tuple[LinkWeight, ...]:
        """Validate link weights; canonicalise endpoints (undirected)."""
        canonical: list[LinkWeight] = []
        seen: set[tuple[tuple[int, int], tuple[int, int]]] = set()
        for entry in self.link_weights or ():
            (a, b, weight) = (tuple(entry[0]), tuple(entry[1]), entry[2])
            for x, y in (a, b):
                if not (0 <= x < self.cols and 0 <= y < self.rows):
                    raise ValueError(
                        f"link endpoint {(x, y)} outside the "
                        f"{self.cols}x{self.rows} mesh")
            if self._link_span(a, b) != 1:
                raise ValueError(
                    f"link {a}-{b} does not join adjacent routers")
            if weight < 1:
                raise ValueError(
                    f"link {a}-{b} weight must be >= 1, got {weight}")
            key = (min(a, b), max(a, b))
            if key in seen:
                raise ValueError(f"link {a}-{b} listed twice")
            seen.add(key)
            canonical.append((key[0], key[1], weight))
        return tuple(canonical)

    def _link_span(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Mesh distance between two routers (wrap-aware)."""
        return (self._axis_delta(a[0], b[0], self.cols)
                + self._axis_delta(a[1], b[1], self.rows))

    # -- counting --------------------------------------------------------
    @property
    def tiles_per_chip(self) -> int:
        return self.cols * self.rows

    @property
    def cores_per_chip(self) -> int:
        return self.tiles_per_chip * self.cores_per_tile

    @property
    def num_tiles(self) -> int:
        return self.tiles_per_chip * self.chips

    @property
    def num_cores(self) -> int:
        return self.num_tiles * self.cores_per_tile

    def cores(self) -> range:
        return range(self.num_cores)

    # -- placement --------------------------------------------------------
    def tile_of(self, core: int) -> int:
        self._check_core(core)
        return core // self.cores_per_tile

    def tile_coords(self, tile: int) -> tuple[int, int]:
        """Chip-local mesh coordinates of a (global) tile id."""
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.num_tiles})")
        local = tile % self.tiles_per_chip
        return (local % self.cols, local // self.cols)

    def core_coords(self, core: int) -> tuple[int, int]:
        return self.tile_coords(self.tile_of(core))

    def cores_of_tile(self, tile: int) -> tuple[int, ...]:
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.num_tiles})")
        base = tile * self.cores_per_tile
        return tuple(range(base, base + self.cores_per_tile))

    def same_tile(self, core_a: int, core_b: int) -> bool:
        return self.tile_of(core_a) == self.tile_of(core_b)

    # -- chips -------------------------------------------------------------
    def chip_of_tile(self, tile: int) -> int:
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.num_tiles})")
        return tile // self.tiles_per_chip

    def chip_of(self, core: int) -> int:
        """Chip holding a core (0 for every core on single-chip shapes)."""
        return self.tile_of(core) // self.tiles_per_chip

    def chip_crossings(self, core_a: int, core_b: int) -> int:
        """Board-level link crossings between two cores' chips.

        Chips are chained in id order, so the crossing count is the chip
        distance.  Zero whenever both cores share a chip (always, on
        single-chip topologies) -- the latency model charges its
        inter-chip tier only when this is positive.
        """
        if self.chips == 1:
            return 0
        return abs(self.chip_of(core_a) - self.chip_of(core_b))

    # -- routing -----------------------------------------------------------
    def _axis_delta(self, a: int, b: int, size: int) -> int:
        direct = abs(a - b)
        if self.torus:
            return min(direct, size - direct)
        return direct

    def _axis_step(self, a: int, b: int, size: int) -> int:
        """Signed step direction along one axis (wrap-aware, shorter way)."""
        if a == b:
            return 0
        if not self.torus:
            return 1 if b > a else -1
        forward = (b - a) % size
        backward = (a - b) % size
        if forward < backward:
            return 1
        if backward < forward:
            return -1
        return 1 if b > a else -1  # tie: take the non-wrapping direction

    def _route_weight(self, path: list[tuple[int, int]]) -> int:
        """Sum link weights along a router path (1 per unlisted link)."""
        table = {(a, b): w for a, b, w in self.link_weights or ()}
        total = 0
        for u, v in zip(path, path[1:]):
            key = (min(u, v), max(u, v))
            total += table.get(key, 1)
        return total

    def _local_hops(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Routing cost between two routers on one chip, in hop units."""
        if self.link_weights is not None:
            return self._route_weight(self._local_route(a, b))
        return self._axis_delta(a[0], b[0], self.cols) + \
            self._axis_delta(a[1], b[1], self.rows)

    def _local_route(self, a: tuple[int, int],
                     b: tuple[int, int]) -> list[tuple[int, int]]:
        """XY route between two routers on one chip (inclusive)."""
        (xa, ya), (xb, yb) = a, b
        path = [(xa, ya)]
        x, y = xa, ya
        step_x = self._axis_step(xa, xb, self.cols)
        while x != xb:
            x = (x + step_x) % self.cols if self.torus else x + step_x
            path.append((x, y))
        step_y = self._axis_step(ya, yb, self.rows)
        while y != yb:
            y = (y + step_y) % self.rows if self.torus else y + step_y
            path.append((x, y))
        return path

    def hops(self, core_a: int, core_b: int) -> int:
        """Mesh hops between the tiles of two cores.

        On the plain mesh this is the Manhattan distance; on a torus the
        wrapped distance; with ``link_weights`` the weighted length of the
        XY route.  Across chips it is the sum of each core's local route
        to its chip's gateway router at ``(0, 0)`` -- the board-level
        crossings themselves are reported by :meth:`chip_crossings`, not
        counted here.
        """
        ca = self.core_coords(core_a)
        cb = self.core_coords(core_b)
        if self.chip_of(core_a) == self.chip_of(core_b):
            return self._local_hops(ca, cb)
        gateway = (0, 0)
        return self._local_hops(ca, gateway) + self._local_hops(gateway, cb)

    def xy_route(self, core_a: int, core_b: int) -> list[tuple[int, int]]:
        """Router coordinates traversed by an XY-routed packet (inclusive).

        Cross-chip routes are the concatenation of the local route to the
        source chip's gateway ``(0, 0)`` and the route from the target
        chip's gateway onward; coordinates are chip-local.
        """
        ca = self.core_coords(core_a)
        cb = self.core_coords(core_b)
        if self.chip_of(core_a) == self.chip_of(core_b):
            return self._local_route(ca, cb)
        gateway = (0, 0)
        return self._local_route(ca, gateway) + self._local_route(gateway, cb)

    def max_hops(self) -> int:
        """Mesh diameter in hops (routing-cost units)."""
        if self.chips == 1 and not self.torus and self.link_weights is None:
            return (self.cols - 1) + (self.rows - 1)
        return max(self.hops(a, b) for a in self.cores()
                   for b in self.cores())

    def average_hops(self) -> float:
        """Mean hop count over all ordered core pairs (distinct cores)."""
        total = 0
        count = 0
        for a in self.cores():
            for b in self.cores():
                if a != b:
                    total += self.hops(a, b)
                    count += 1
        return total / count if count else 0.0

    # -- memory controllers --------------------------------------------------
    def mc_routers(self) -> list[tuple[int, int]]:
        """Mesh coordinates of the memory-controller attach points.

        Explicit ``mc_placement`` wins; otherwise the four quadrant
        corners, deduplicated in order for degenerate shapes (on a 1xN or
        Nx1 mesh the corners alias pairwise, on 1x1 all four coincide).
        Multi-chip topologies replicate the same local placement on every
        chip (each chip keeps its own DDR controllers).
        """
        if self.mc_placement is not None:
            return list(self.mc_placement)
        corners = [
            (0, 0),
            (self.cols - 1, 0),
            (0, self.rows - 1),
            (self.cols - 1, self.rows - 1),
        ]
        deduped: list[tuple[int, int]] = []
        for corner in corners:
            if corner not in deduped:
                deduped.append(corner)
        return deduped

    def mc_of_core(self, core: int) -> tuple[int, int]:
        """Controller serving a core: the nearest attach point (chip-local
        coordinates; quadrant mapping on the default placement)."""
        x, y = self.core_coords(core)
        routers = self.mc_routers()
        return min(routers, key=lambda r: (abs(r[0] - x) + abs(r[1] - y),
                                           routers.index(r)))

    def hops_to_mc(self, core: int) -> int:
        """Hops from a core's tile to its memory controller's router."""
        xy = self.core_coords(core)
        return self._local_hops(xy, self.mc_of_core(core))

    # -- orderings -------------------------------------------------------------
    def ring_order(self) -> list[int]:
        """Natural rank ring 0, 1, ..., p-1 (what RCCE_comm uses)."""
        return list(self.cores())

    def snake_ring_order(self) -> list[int]:
        """A topology-aware ring: tiles visited in boustrophedon (snake)
        order so successive ring neighbours are at most one mesh hop apart.
        Chips are visited in id order.  Used by the topology-mapping
        ablation."""
        order: list[int] = []
        for chip in range(self.chips):
            base = chip * self.tiles_per_chip
            for y in range(self.rows):
                xs = (range(self.cols) if y % 2 == 0
                      else range(self.cols - 1, -1, -1))
                for x in xs:
                    tile = base + y * self.cols + x
                    order.extend(self.cores_of_tile(tile))
        return order

    def neighbors(self, tile: int) -> Iterator[int]:
        """Tiles adjacent in the mesh (same chip; wrap links on a torus)."""
        x, y = self.tile_coords(tile)
        base = self.chip_of_tile(tile) * self.tiles_per_chip
        seen: set[int] = set()
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if self.torus:
                nx %= self.cols
                ny %= self.rows
            if 0 <= nx < self.cols and 0 <= ny < self.rows:
                neighbor = base + ny * self.cols + nx
                if neighbor != tile and neighbor not in seen:
                    seen.add(neighbor)
                    yield neighbor

    # -- internals ----------------------------------------------------------
    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range [0, {self.num_cores})")


@lru_cache(maxsize=8)
def default_topology(cols: int = 6, rows: int = 4,
                     cores_per_tile: int = 2) -> Topology:
    """Cached constructor for the standard SCC geometry."""
    return Topology(cols, rows, cores_per_tile)
