"""SCC mesh topology: tiles, cores, XY routing, memory controllers.

The SCC arranges 24 tiles in a 6 (columns) x 4 (rows) mesh; each tile holds
two cores, so core ``i`` sits on tile ``i // 2``.  Tiles are numbered
row-major: tile ``t`` has mesh coordinates ``(x, y) = (t % cols, t // cols)``.
Packets are routed X-first then Y (dimension-ordered XY routing), which is
deadlock-free and gives a hop count equal to the Manhattan distance.

Four DDR3 memory controllers hang off the mesh at routers ``(0, 0)``,
``(cols-1, 0)``, ``(0, rows-1)`` and ``(cols-1, rows-1)``; each core is
served by the controller of its quadrant (as on the real chip, where the
lookup tables default to a quadrant mapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator


@dataclass(frozen=True)
class Topology:
    """Geometry of the core/tile mesh plus routing helpers."""

    cols: int = 6
    rows: int = 4
    cores_per_tile: int = 2

    def __post_init__(self) -> None:
        if self.cols <= 0 or self.rows <= 0 or self.cores_per_tile <= 0:
            raise ValueError("topology dimensions must be positive")

    # -- counting --------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        return self.cols * self.rows

    @property
    def num_cores(self) -> int:
        return self.num_tiles * self.cores_per_tile

    def cores(self) -> range:
        return range(self.num_cores)

    # -- placement --------------------------------------------------------
    def tile_of(self, core: int) -> int:
        self._check_core(core)
        return core // self.cores_per_tile

    def tile_coords(self, tile: int) -> tuple[int, int]:
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.num_tiles})")
        return (tile % self.cols, tile // self.cols)

    def core_coords(self, core: int) -> tuple[int, int]:
        return self.tile_coords(self.tile_of(core))

    def cores_of_tile(self, tile: int) -> tuple[int, ...]:
        if not 0 <= tile < self.num_tiles:
            raise ValueError(f"tile {tile} out of range [0, {self.num_tiles})")
        base = tile * self.cores_per_tile
        return tuple(range(base, base + self.cores_per_tile))

    def same_tile(self, core_a: int, core_b: int) -> bool:
        return self.tile_of(core_a) == self.tile_of(core_b)

    # -- routing -----------------------------------------------------------
    def hops(self, core_a: int, core_b: int) -> int:
        """Mesh hops between the tiles of two cores (Manhattan distance)."""
        xa, ya = self.core_coords(core_a)
        xb, yb = self.core_coords(core_b)
        return abs(xa - xb) + abs(ya - yb)

    def xy_route(self, core_a: int, core_b: int) -> list[tuple[int, int]]:
        """Router coordinates traversed by an XY-routed packet (inclusive)."""
        xa, ya = self.core_coords(core_a)
        xb, yb = self.core_coords(core_b)
        path = [(xa, ya)]
        x, y = xa, ya
        step_x = 1 if xb > xa else -1
        while x != xb:
            x += step_x
            path.append((x, y))
        step_y = 1 if yb > ya else -1
        while y != yb:
            y += step_y
            path.append((x, y))
        return path

    def max_hops(self) -> int:
        """Mesh diameter in hops."""
        return (self.cols - 1) + (self.rows - 1)

    def average_hops(self) -> float:
        """Mean hop count over all ordered core pairs (distinct cores)."""
        total = 0
        count = 0
        for a in self.cores():
            for b in self.cores():
                if a != b:
                    total += self.hops(a, b)
                    count += 1
        return total / count if count else 0.0

    # -- memory controllers --------------------------------------------------
    def mc_routers(self) -> list[tuple[int, int]]:
        """Mesh coordinates of the four memory-controller attach points."""
        return [
            (0, 0),
            (self.cols - 1, 0),
            (0, self.rows - 1),
            (self.cols - 1, self.rows - 1),
        ]

    def mc_of_core(self, core: int) -> tuple[int, int]:
        """Controller serving a core: the nearest of the four (quadrant)."""
        x, y = self.core_coords(core)
        routers = self.mc_routers()
        return min(routers, key=lambda r: (abs(r[0] - x) + abs(r[1] - y),
                                           routers.index(r)))

    def hops_to_mc(self, core: int) -> int:
        """Hops from a core's tile to its memory controller's router."""
        x, y = self.core_coords(core)
        mx, my = self.mc_of_core(core)
        return abs(mx - x) + abs(my - y)

    # -- orderings -------------------------------------------------------------
    def ring_order(self) -> list[int]:
        """Natural rank ring 0, 1, ..., p-1 (what RCCE_comm uses)."""
        return list(self.cores())

    def snake_ring_order(self) -> list[int]:
        """A topology-aware ring: tiles visited in boustrophedon (snake)
        order so successive ring neighbours are at most one mesh hop apart.
        Used by the topology-mapping ablation."""
        order: list[int] = []
        for y in range(self.rows):
            xs = range(self.cols) if y % 2 == 0 else range(self.cols - 1, -1, -1)
            for x in xs:
                tile = y * self.cols + x
                order.extend(self.cores_of_tile(tile))
        return order

    def neighbors(self, tile: int) -> Iterator[int]:
        """Tiles adjacent in the mesh."""
        x, y = self.tile_coords(tile)
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.cols and 0 <= ny < self.rows:
                yield ny * self.cols + nx

    # -- internals ----------------------------------------------------------
    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range [0, {self.num_cores})")


@lru_cache(maxsize=8)
def default_topology(cols: int = 6, rows: int = 4,
                     cores_per_tile: int = 2) -> Topology:
    """Cached constructor for the standard SCC geometry."""
    return Topology(cols, rows, cores_per_tile)
