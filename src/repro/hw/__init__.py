"""Hardware model of the Intel Single-Chip Cloud Computer.

Subsystems:

* :mod:`repro.hw.config` — every timing/geometry parameter (`SCCConfig`),
  clock presets, the erratum toggle, the active topology spec.
* :mod:`repro.hw.topology` — tile meshes (the paper's 6x4 chip by
  default), tori, multi-chip clusters, XY routing, hop counts,
  memory-controller placement.
* :mod:`repro.hw.topo` — the topology registry: named ``family:body``
  specs (``mesh:6x4``, ``torus:8x8``, ``cluster:2x24``) resolving to
  shared :class:`~repro.hw.topology.Topology` instances.
* :mod:`repro.hw.timing` — the latency model (MPB/DRAM/cache access costs,
  bulk copy pipelines, reduction arithmetic, the inter-chip link tier).
* :mod:`repro.hw.mpb` — message-passing buffers with real byte storage.
* :mod:`repro.hw.flags` — MPB synchronization flags with timed access.
* :mod:`repro.hw.machine` — the assembled chip (`Machine`), cores with
  busy/wait accounting, and the SPMD launcher (`run_spmd`).
"""

from repro.hw.config import CLOCK_PRESETS, SCCConfig, config_for_preset
from repro.hw.flags import Flag
from repro.hw.machine import Core, CoreEnv, Machine, SPMDResult
from repro.hw.mpb import MPB, MPBError, MPBRegion, as_bytes
from repro.hw.timing import LatencyModel
from repro.hw.topo import (available_topologies, get_topology,
                           register_topology)
from repro.hw.topology import Topology, default_topology

__all__ = [
    "CLOCK_PRESETS",
    "Core",
    "CoreEnv",
    "Flag",
    "LatencyModel",
    "MPB",
    "MPBError",
    "MPBRegion",
    "Machine",
    "SCCConfig",
    "SPMDResult",
    "Topology",
    "as_bytes",
    "available_topologies",
    "config_for_preset",
    "default_topology",
    "get_topology",
    "register_topology",
]
