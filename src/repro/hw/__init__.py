"""Hardware model of the Intel Single-Chip Cloud Computer.

Subsystems:

* :mod:`repro.hw.config` — every timing/geometry parameter (`SCCConfig`),
  clock presets, the erratum toggle.
* :mod:`repro.hw.topology` — the 6x4 tile mesh, XY routing, hop counts,
  memory-controller placement.
* :mod:`repro.hw.timing` — the latency model (MPB/DRAM/cache access costs,
  bulk copy pipelines, reduction arithmetic).
* :mod:`repro.hw.mpb` — message-passing buffers with real byte storage.
* :mod:`repro.hw.flags` — MPB synchronization flags with timed access.
* :mod:`repro.hw.machine` — the assembled chip (`Machine`), cores with
  busy/wait accounting, and the SPMD launcher (`run_spmd`).
"""

from repro.hw.config import CLOCK_PRESETS, SCCConfig, config_for_preset
from repro.hw.flags import Flag
from repro.hw.machine import Core, CoreEnv, Machine, SPMDResult
from repro.hw.mpb import MPB, MPBError, MPBRegion, as_bytes
from repro.hw.timing import LatencyModel
from repro.hw.topology import Topology, default_topology

__all__ = [
    "CLOCK_PRESETS",
    "Core",
    "CoreEnv",
    "Flag",
    "LatencyModel",
    "MPB",
    "MPBError",
    "MPBRegion",
    "Machine",
    "SCCConfig",
    "SPMDResult",
    "Topology",
    "as_bytes",
    "config_for_preset",
    "default_topology",
]
